package codegen

import (
	"fmt"

	"cash/internal/ir"
	"cash/internal/minic"
	"cash/internal/vm"
	"cash/internal/x86seg"
)

// The back end is a three-stage pipeline:
//
//	lower     AST -> ir.Module     (strategy-parameterised, strategy.go)
//	passes    ir.Module -> ir.Module (optional, rce.go / hoist.go)
//	emit      ir.Module -> vm.Program (ir.Module.EmitTo replay)
//
// ir.Verify runs after lowering and after every pass. With no passes
// configured the emission replay is byte-identical to the historical
// direct-emission back end, which the golden tests pin.

// Pass is one optional IR-to-IR optimization pass. Passes run in the
// fixed registry order (rce before hoist before affine) regardless of
// the order names appear in Config.Passes.
type Pass interface {
	Name() string
	run(c *compiler, m *ir.Module) error
}

// passRegistry lists every available pass in canonical execution order.
var passRegistry = []Pass{rcePass{}, hoistPass{}, affinePass{}, chopPass{}}

// PassNames returns the valid Config.Passes entries in canonical order.
func PassNames() []string {
	names := make([]string, len(passRegistry))
	for i, p := range passRegistry {
		names[i] = p.Name()
	}
	return names
}

// validate resolves and checks the configuration: mode known, segment
// register budget well-formed (no duplicates, only array-capable
// registers, SS — which forces the stack-addressing rewrite — last so
// the budget order matches FCFS assignment), pass names known and not
// repeated. A bad budget used to miscompile silently; now it errors.
func (cfg Config) validate() ([]x86seg.SegReg, []Pass, error) {
	if cfg.Mode == 0 {
		return nil, nil, fmt.Errorf("codegen: config missing mode")
	}
	if _, ok := strategies[cfg.Mode]; !ok {
		return nil, nil, fmt.Errorf("codegen: unknown mode %d", cfg.Mode)
	}
	segRegs := cfg.SegRegs
	if segRegs == nil {
		segRegs = DefaultSegRegs
	}
	seen := make(map[x86seg.SegReg]bool, len(segRegs))
	for i, r := range segRegs {
		switch r {
		case x86seg.ES, x86seg.FS, x86seg.GS:
		case x86seg.SS:
			if i != len(segRegs)-1 {
				return nil, nil, fmt.Errorf("codegen: SS must be the last segment register in the budget (got position %d)", i)
			}
		default:
			return nil, nil, fmt.Errorf("codegen: segment register %v cannot hold array segments", r)
		}
		if seen[r] {
			return nil, nil, fmt.Errorf("codegen: duplicate segment register %v in budget", r)
		}
		seen[r] = true
	}
	want := make(map[string]bool, len(cfg.Passes))
	for _, name := range cfg.Passes {
		known := false
		for _, p := range passRegistry {
			if p.Name() == name {
				known = true
				break
			}
		}
		if !known {
			return nil, nil, fmt.Errorf("codegen: unknown pass %q (have %v)", name, PassNames())
		}
		if want[name] {
			return nil, nil, fmt.Errorf("codegen: duplicate pass %q", name)
		}
		want[name] = true
	}
	var passes []Pass
	for _, p := range passRegistry {
		if want[p.Name()] {
			passes = append(passes, p)
		}
	}
	return segRegs, passes, nil
}

// Compile type-checks nothing: the caller must run minic.Check first.
// It returns a runnable vm.Program.
func Compile(prog *minic.Program, cfg Config) (*vm.Program, error) {
	p, _, err := CompileIR(prog, cfg)
	return p, err
}

// CompileIR compiles like Compile but also returns the optimized IR
// module (for -dump-ir and the tests).
func CompileIR(prog *minic.Program, cfg Config) (*vm.Program, *ir.Module, error) {
	segRegs, passes, err := cfg.validate()
	if err != nil {
		return nil, nil, err
	}
	stackSeg := x86seg.SS
	for _, r := range segRegs {
		if r == x86seg.SS {
			stackSeg = x86seg.DS
		}
	}
	wantHoist, wantAffine, wantChop := false, false, false
	for _, p := range passes {
		switch p.Name() {
		case "hoist":
			wantHoist = true
		case "affine":
			wantAffine = true
		case "chop":
			wantChop = true
		}
	}
	c := &compiler{
		cfg:        cfg,
		strat:      strategies[cfg.Mode],
		segRegs:    segRegs,
		stackSeg:   stackSeg,
		src:        prog,
		b:          ir.NewBuilder(),
		boundsPool: make(map[[2]uint32]uint32),
		gInfo:      make(map[*minic.VarDecl]uint32),
		localInfo:  make(map[*minic.VarDecl]int32),
		checks:     make(map[int]*checkRec),
		deadChecks: make(map[int]bool),
		declID:     make(map[*minic.VarDecl]int),
		wantHoist:  wantHoist,
		wantAffine: wantAffine,
		wantChop:   wantChop,
		stats:      make(map[string]uint64),
	}
	if err := c.layoutGlobals(); err != nil {
		return nil, nil, err
	}
	for _, fn := range prog.Funcs {
		if err := c.genFunc(fn); err != nil {
			return nil, nil, fmt.Errorf("function %s: %w", fn.Name, err)
		}
	}
	c.genTrap()
	c.genStartup()
	mod := c.b.Module()
	if err := ir.Verify(mod); err != nil {
		return nil, nil, fmt.Errorf("codegen: after lowering: %w", err)
	}
	for _, pass := range passes {
		if err := pass.run(c, mod); err != nil {
			return nil, nil, fmt.Errorf("codegen: pass %s: %w", pass.Name(), err)
		}
		if err := ir.Verify(mod); err != nil {
			return nil, nil, fmt.Errorf("codegen: after pass %s: %w", pass.Name(), err)
		}
	}
	vb := vm.NewBuilder()
	entry := mod.EmitTo(vb, startupFragment)
	p, err := vb.Finish("program")
	if err != nil {
		return nil, nil, err
	}
	p.Entry = entry
	p.Mode = cfg.Mode.String()
	p.Data = c.data
	p.DataBase = DataBase
	heap := (DataBase + uint32(len(c.data)) + 0xfff) &^ 0xfff
	p.HeapBase = heap + 0x1000
	p.StackTop = StackTop
	for k, v := range c.stats {
		p.Stats[k] = v
	}
	// Superblock hints for tier-2 execution: advisory loop spans in the
	// exact offsets the EmitTo replay above assigned. Attached for every
	// build — whether a machine uses them is a run option (Options.Tier2).
	p.Regions = mod.SuperblockHints()
	return p, mod, nil
}

// ---------------------------------------------------------------------
// Check provenance. Every emitted software check carries a fresh check
// id (stamped onto its instructions via ir.Builder.SetCheck); declared-
// object references additionally record a canonical (object, index) key
// and the scalar variables it reads, which is what the redundancy
// analysis reasons over.

// checkRec describes one emitted software check.
type checkRec struct {
	id   int
	decl *minic.VarDecl // checked object; nil for computed references
	// key canonically renders "object + scaled index". Empty means the
	// check is not eligible for redundancy elimination (impure index,
	// register-metadata check, synthesized preheader check).
	key  string
	vars []*minic.VarDecl // scalar variables the key reads
}

func (c *compiler) newCheck() int {
	c.checkSeq++
	return c.checkSeq
}

// checkedDeclRef emits the mode's software check for a declared-object
// reference whose address is in addr, recording provenance for the
// passes: check id, redundancy key, and hoist candidacy.
func (c *compiler) checkedDeclRef(addr vm.Reg, d *minic.VarDecl, idx minic.Expr, idxConst int32, idxReg bool) {
	id := c.newCheck()
	rec := &checkRec{id: id, decl: d}
	rec.key, rec.vars = c.indexKey(d, idx, idxConst, idxReg)
	c.checks[id] = rec
	c.noteHoistRef(d, idx, idxConst, idxReg, id)
	c.noteAffineRef(d, idx, idxConst, idxReg, id)
	c.noteChopRef(d, idx, idxConst, idxReg, id)
	prev := c.b.SetCheck(id)
	c.strat.emitCheckForDecl(c, addr, d)
	c.b.SetCheck(prev)
}

// emitCheckForDecl emits the mode's software check without provenance
// beyond an anonymous id (used by the hoist pass for its synthesized
// range checks).
func (c *compiler) emitCheckForDecl(addr vm.Reg, d *minic.VarDecl) {
	id := c.newCheck()
	c.checks[id] = &checkRec{id: id, decl: d}
	prev := c.b.SetCheck(id)
	c.strat.emitCheckForDecl(c, addr, d)
	c.b.SetCheck(prev)
}

// declKey assigns per-function ordinals to declarations so canonical
// keys are deterministic.
func (c *compiler) declKey(d *minic.VarDecl) int {
	id, ok := c.declID[d]
	if !ok {
		id = len(c.declID) + 1
		c.declID[d] = id
	}
	return id
}

// indexKey renders the reference's scaled index canonically. Constant
// indices fold into idxConst; otherwise the index expression must be a
// pure scalar computation (no memory reads beyond named int/char
// scalars, no side effects) — anything else returns an empty key, which
// marks the check ineligible for elimination. Purity matters: a key may
// only stop matching through stores the dataflow can see (scalar slots,
// tracked object slots), so an index like a[b[i]] must not form a key.
func (c *compiler) indexKey(d *minic.VarDecl, idx minic.Expr, idxConst int32, idxReg bool) (string, []*minic.VarDecl) {
	base := fmt.Sprintf("d%d:%d|", c.declKey(d), idxConst)
	if idx == nil || !idxReg {
		return base, nil
	}
	var vars []*minic.VarDecl
	s, ok := c.canonExpr(idx, &vars)
	if !ok {
		return "", nil
	}
	return base + s, vars
}

// canonExpr renders a pure scalar expression canonically, accumulating
// the scalar variables it reads. Returns ok=false for anything impure.
func (c *compiler) canonExpr(e minic.Expr, vars *[]*minic.VarDecl) (string, bool) {
	switch e := e.(type) {
	case *minic.NumberLit:
		return fmt.Sprintf("#%d", e.Value), true
	case *minic.VarRef:
		d := e.Decl
		if d == nil || (d.Type != minic.Int && d.Type != minic.Char) {
			return "", false
		}
		*vars = append(*vars, d)
		return fmt.Sprintf("v%d", c.declKey(d)), true
	case *minic.Unary:
		switch e.Op {
		case "-", "~", "!":
		default:
			return "", false
		}
		x, ok := c.canonExpr(e.X, vars)
		if !ok {
			return "", false
		}
		return e.Op + x, true
	case *minic.Binary:
		switch e.Op {
		case "+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
			"==", "!=", "<", "<=", ">", ">=", "&&", "||":
		default:
			return "", false
		}
		x, ok := c.canonExpr(e.X, vars)
		if !ok {
			return "", false
		}
		y, ok := c.canonExpr(e.Y, vars)
		if !ok {
			return "", false
		}
		return "(" + x + e.Op + y + ")", true
	case *minic.Cast:
		if e.To.Kind == minic.TypePointer {
			return "", false
		}
		return c.canonExpr(e.X, vars)
	default:
		return "", false
	}
}

// refTag annotates the memory operands a reference hands out; the
// passes use it to judge what a store through the operand can touch.
type refTag struct {
	decl *minic.VarDecl
	// exact means the access was bound-checked against the declared
	// array's true storage (software check on a direct array, or a
	// segment-checked direct array), so an in-flight store cannot land
	// on scalar or pointer slots. Unchecked, pointer-mediated and
	// computed accesses are inexact: their store can hit anything.
	exact bool
}

// condEnter / condExit bracket conditionally-executed code (if branches,
// nested loops, short-circuit right operands) for the active hoist
// candidates: a reference qualifies for hoisting only when it executes
// unconditionally in every iteration of the candidate loop.
func (c *compiler) condEnter() {
	for _, h := range c.hoistCands {
		h.depth++
	}
}

func (c *compiler) condExit() {
	for _, h := range c.hoistCands {
		h.depth--
	}
}

// fnState snapshots the per-function context the passes need after
// lowering has moved on to the next function.
type fnState struct {
	fn       *minic.FuncDecl
	frag     *ir.Fragment
	frameOff map[*minic.VarDecl]int32
	temps    map[int32]bool // EBP offsets of compiler-internal hoist slots
	hoists   []*hoistCand
	// affineRefs are the candidate computed-index references recorded
	// for the affine pass (affine.go), in lowering order.
	affineRefs []*affineRef
	// chopRefs maps check ids to the direct-array reference shapes the
	// chop pass can consolidate (chop.go).
	chopRefs map[int]*chopRef
}
