package codegen

import (
	"cash/internal/minic"
	"cash/internal/x86seg"
)

// Loop/array analysis (§3.4, §3.7).
//
// Cash bound-checks array-like references *inside loops*. For each
// outermost loop we collect the distinct array objects referenced anywhere
// within it (nested loops included) in first-come-first-serve syntactic
// order, and assign each to one of the available segment registers. Arrays
// beyond the register budget are "spilled": their references fall back to
// software bound checks against the object's info structure. An object is
// identified by the declaration of the array variable or pointer variable
// the reference goes through; references through computed pointers
// (function results, nested derefs) cannot be pinned to a segment register
// and always use the software path inside loops.
//
// A pointer variable that is wholesale-reassigned inside the loop (p = q,
// as opposed to p++ or p += k, which stay within the same object) cannot
// keep a segment register either, because the register would go stale; it
// is excluded from assignment and its references are software-checked.

// loopInfo is the analysis result for one outermost loop.
type loopInfo struct {
	// assigned maps array/pointer declarations to their segment register,
	// in FCFS order.
	assigned map[*minic.VarDecl]x86seg.SegReg
	// order preserves the FCFS order of all distinct objects seen.
	order []*minic.VarDecl
	// spilled objects are checked in software.
	spilled map[*minic.VarDecl]bool
	// modified pointers are advanced inside the loop (p++, p += k): they
	// stay within their object, so they keep their segment register, but
	// the hoisted relative base cannot be used — references recompute the
	// segment offset from the live pointer value and the hoisted lower
	// bound.
	modified map[*minic.VarDecl]bool
	// distinct is the number of distinct array objects in the loop.
	distinct int
}

// funcAnalysis is the analysis result for one function.
type funcAnalysis struct {
	// loops maps each outermost loop statement (*minic.WhileStmt or
	// *minic.ForStmt) to its info.
	loops map[minic.Stmt]*loopInfo
	// segRegsUsed is the set of segment registers the function touches
	// (for save/restore in the prologue/epilogue, §3.7).
	segRegsUsed []x86seg.SegReg
}

// analyzeFunc walks a function body, finds outermost loops and performs
// segment-register assignment with the given register budget.
func analyzeFunc(fn *minic.FuncDecl, segRegs []x86seg.SegReg) *funcAnalysis {
	fa := &funcAnalysis{loops: make(map[minic.Stmt]*loopInfo)}
	used := make(map[x86seg.SegReg]bool)
	var walk func(s minic.Stmt)
	walk = func(s minic.Stmt) {
		switch s := s.(type) {
		case *minic.BlockStmt:
			for _, sub := range s.Stmts {
				walk(sub)
			}
		case *minic.IfStmt:
			if s.Then != nil {
				walk(s.Then)
			}
			if s.Else != nil {
				walk(s.Else)
			}
		case *minic.WhileStmt:
			li := analyzeLoop(s.Body, nil, segRegs)
			fa.loops[s] = li
			for _, r := range li.assigned {
				used[r] = true
			}
		case *minic.ForStmt:
			li := analyzeLoop(s.Body, s, segRegs)
			fa.loops[s] = li
			for _, r := range li.assigned {
				used[r] = true
			}
		}
	}
	walk(fn.Body)
	for _, r := range segRegs {
		if used[r] {
			fa.segRegsUsed = append(fa.segRegsUsed, r)
		}
	}
	return fa
}

// analyzeLoop collects array objects referenced within an outermost loop
// (body plus, for a for-loop, its condition and post expressions) and
// assigns segment registers FCFS.
func analyzeLoop(body minic.Stmt, forStmt *minic.ForStmt, segRegs []x86seg.SegReg) *loopInfo {
	li := &loopInfo{
		assigned: make(map[*minic.VarDecl]x86seg.SegReg),
		spilled:  make(map[*minic.VarDecl]bool),
		modified: make(map[*minic.VarDecl]bool),
	}
	seen := make(map[*minic.VarDecl]bool)
	reassigned := make(map[*minic.VarDecl]bool)

	note := func(d *minic.VarDecl) {
		if d == nil || seen[d] {
			return
		}
		seen[d] = true
		li.order = append(li.order, d)
	}

	var walkExpr func(e minic.Expr)
	var walkStmt func(s minic.Stmt)

	walkExpr = func(e minic.Expr) {
		switch e := e.(type) {
		case *minic.Index:
			note(refObject(e.Base))
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *minic.Unary:
			if e.Op == "*" {
				note(refObject(e.X))
			}
			walkExpr(e.X)
		case *minic.IncDec:
			if v, ok := e.X.(*minic.VarRef); ok && v.Decl != nil &&
				v.Decl.Type.Kind == minic.TypePointer {
				li.modified[v.Decl] = true
			}
			walkExpr(e.X)
		case *minic.Binary:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *minic.Assign:
			// Wholesale reassignment of a pointer variable invalidates a
			// segment register held over it.
			if v, ok := e.LHS.(*minic.VarRef); ok && v.Decl != nil &&
				v.Decl.Type.Kind == minic.TypePointer {
				if e.Op == "=" {
					reassigned[v.Decl] = true
				} else {
					li.modified[v.Decl] = true
				}
			}
			walkExpr(e.LHS)
			walkExpr(e.RHS)
		case *minic.Call:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *minic.Cast:
			walkExpr(e.X)
		}
	}
	walkStmt = func(s minic.Stmt) {
		switch s := s.(type) {
		case *minic.BlockStmt:
			for _, sub := range s.Stmts {
				walkStmt(sub)
			}
		case *minic.DeclStmt:
			for _, d := range s.Decls {
				// A pointer declared inside the loop body has no value
				// when the loop preamble runs, so it cannot hold a
				// hoisted segment register: treat it like a reassigned
				// pointer (software-checked).
				if d.Type.Kind == minic.TypePointer {
					reassigned[d] = true
				}
				if d.Init != nil {
					walkExpr(d.Init)
				}
				for _, e := range d.InitList {
					walkExpr(e)
				}
			}
		case *minic.ExprStmt:
			walkExpr(s.X)
		case *minic.IfStmt:
			walkExpr(s.Cond)
			if s.Then != nil {
				walkStmt(s.Then)
			}
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *minic.WhileStmt:
			walkExpr(s.Cond)
			if s.Body != nil {
				walkStmt(s.Body)
			}
		case *minic.ForStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			if s.Cond != nil {
				walkExpr(s.Cond)
			}
			if s.Post != nil {
				walkExpr(s.Post)
			}
			if s.Body != nil {
				walkStmt(s.Body)
			}
		case *minic.ReturnStmt:
			if s.X != nil {
				walkExpr(s.X)
			}
		}
	}

	if forStmt != nil {
		if forStmt.Cond != nil {
			walkExpr(forStmt.Cond)
		}
		if forStmt.Post != nil {
			walkExpr(forStmt.Post)
		}
	}
	if body != nil {
		walkStmt(body)
	}

	li.distinct = len(li.order)
	next := 0
	for _, d := range li.order {
		if reassigned[d] {
			li.spilled[d] = true
			continue
		}
		if next < len(segRegs) {
			li.assigned[d] = segRegs[next]
			next++
		} else {
			li.spilled[d] = true
		}
	}
	return li
}

// refObject returns the declaration that identifies the array object a
// reference goes through, or nil when the base is a computed expression.
func refObject(base minic.Expr) *minic.VarDecl {
	switch b := base.(type) {
	case *minic.VarRef:
		if b.Decl != nil && (b.Decl.Type.Kind == minic.TypeArray || b.Decl.Type.Kind == minic.TypePointer) {
			return b.Decl
		}
	case *minic.Cast:
		return refObject(b.X)
	}
	return nil
}

// LoopStats summarises the static loop characteristics the paper reports
// in Tables 4 and 7.
type LoopStats struct {
	ArrayUsingLoops int // loops whose body references at least one array
	SpilledLoops    int // loops with more than len(segRegs) distinct arrays
}

// AnalyzeLoopStats counts array-using loops and spilled loops over a whole
// program, counting every loop (not just outermost), as the paper's
// characteristics tables do.
func AnalyzeLoopStats(prog *minic.Program, budget int) LoopStats {
	var st LoopStats
	var walkStmt func(s minic.Stmt)
	countLoop := func(body minic.Stmt, forStmt *minic.ForStmt) {
		li := analyzeLoop(body, forStmt, nil)
		if li.distinct > 0 {
			st.ArrayUsingLoops++
		}
		if li.distinct > budget {
			st.SpilledLoops++
		}
	}
	walkStmt = func(s minic.Stmt) {
		switch s := s.(type) {
		case *minic.BlockStmt:
			for _, sub := range s.Stmts {
				walkStmt(sub)
			}
		case *minic.IfStmt:
			if s.Then != nil {
				walkStmt(s.Then)
			}
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *minic.WhileStmt:
			countLoop(s.Body, nil)
			if s.Body != nil {
				walkStmt(s.Body)
			}
		case *minic.ForStmt:
			countLoop(s.Body, s)
			if s.Body != nil {
				walkStmt(s.Body)
			}
		}
	}
	for _, fn := range prog.Funcs {
		walkStmt(fn.Body)
	}
	return st
}
