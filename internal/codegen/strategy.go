package codegen

import (
	"cash/internal/minic"
	"cash/internal/vm"
)

// strategy is the checking-strategy lowering interface. Each compiler
// mode (GCC none / BCC software / Cash segment-override) implements the
// mode-specific parts of lowering — pointer representation, metadata
// flow, check insertion, segment lifecycle — behind this interface, so
// the shared lowering in codegen.go/stmt.go/expr.go/access.go contains
// no mode switches. The strategy is the first stage of the pass
// pipeline; the optimization passes (rce, hoist) run on its output.
type strategy interface {
	// ptrWords is the pointer-variable width in words: GCC 1 (value),
	// Cash 2 (value + shadow info pointer), BCC 3 (value, base, limit).
	ptrWords() int32
	// analyzeFunc runs the per-function loop/FCFS/spill analysis over
	// the loop tree (§3.4, §3.7); modes without segment registers
	// return an empty analysis.
	analyzeFunc(c *compiler, fn *minic.FuncDecl) *funcAnalysis

	// Static layout hooks.
	layoutUniverse(c *compiler)
	globalArrayInfo(c *compiler, g *minic.VarDecl)
	staticPointerMeta(c *compiler, addr uint32)
	stringInfo(c *compiler, lit *strLit)
	// localArrayFrame reserves mode-specific frame space below a local
	// array's storage and reports whether the array needs a per-call
	// segment (Cash §3.2/§3.4).
	localArrayFrame(c *compiler, d *minic.VarDecl, cur int32) (int32, bool)
	// emitStartupAllocs emits process set-up before the call to main
	// (Cash: call gate + segments for global arrays and string
	// literals, §3.4).
	emitStartupAllocs(c *compiler)

	// Pointer-metadata emission. pushPtr/popPtr spill and reload a whole
	// pointer (value plus metadata) around a sub-evaluation: the fat-
	// pointer strategies stack the metadata words above the value; MPX
	// instead keys its bounds table by the spill slot's address, exactly
	// like bndstx-on-stack in real MPX code.
	loadUncheckedMeta(c *compiler)
	pushPtr(c *compiler)
	popPtr(c *compiler)
	stringLitMeta(c *compiler, lit strLit)
	arrayDecayMeta(c *compiler, d *minic.VarDecl)
	pointerLoadMeta(c *compiler, d *minic.VarDecl)
	scalarAddrMeta(c *compiler, d *minic.VarDecl)
	storePointerMeta(c *compiler, d *minic.VarDecl)
	storeUncheckedPointerMeta(c *compiler, d *minic.VarDecl)
	mallocCall(c *compiler)

	// Check insertion.
	pathFor(c *compiler, decl *minic.VarDecl) accessPath
	emitCheckForDecl(c *compiler, addr vm.Reg, d *minic.VarDecl)
	computedMetaPush(c *compiler)
	computedMetaCheck(c *compiler, addr vm.Reg)
	// chopDirectArray reports whether the strategy's direct-array check
	// sequences have the constant- or frame-relative-bounds shapes the
	// chop pass knows how to consolidate and patch (chop.go).
	chopDirectArray() bool
}

// emptyAnalysis is the no-segment-register analysis result.
func emptyAnalysis() *funcAnalysis {
	return &funcAnalysis{loops: make(map[minic.Stmt]*loopInfo)}
}

// ---------------------------------------------------------------------
// GCC: the unchecked baseline. Thin pointers, no metadata, no checks.

type gccStrategy struct{}

func (gccStrategy) ptrWords() int32                                             { return 1 }
func (gccStrategy) analyzeFunc(c *compiler, fn *minic.FuncDecl) *funcAnalysis   { return emptyAnalysis() }
func (gccStrategy) layoutUniverse(c *compiler)                                  {}
func (gccStrategy) globalArrayInfo(c *compiler, g *minic.VarDecl)               {}
func (gccStrategy) staticPointerMeta(c *compiler, addr uint32)                  {}
func (gccStrategy) stringInfo(c *compiler, lit *strLit)                         {}
func (gccStrategy) emitStartupAllocs(c *compiler)                               {}
func (gccStrategy) loadUncheckedMeta(c *compiler)                               {}
func (gccStrategy) pushPtr(c *compiler)                                         { c.b.Op1(vm.PUSH, vm.R(vm.EAX)) }
func (gccStrategy) popPtr(c *compiler)                                          { c.b.Op1(vm.POP, vm.R(vm.EAX)) }
func (gccStrategy) stringLitMeta(c *compiler, lit strLit)                       {}
func (gccStrategy) arrayDecayMeta(c *compiler, d *minic.VarDecl)                {}
func (gccStrategy) pointerLoadMeta(c *compiler, d *minic.VarDecl)               {}
func (gccStrategy) scalarAddrMeta(c *compiler, d *minic.VarDecl)                {}
func (gccStrategy) storePointerMeta(c *compiler, d *minic.VarDecl)              {}
func (gccStrategy) storeUncheckedPointerMeta(c *compiler, d *minic.VarDecl)     {}
func (gccStrategy) pathFor(c *compiler, decl *minic.VarDecl) accessPath         { return pathNone }
func (gccStrategy) emitCheckForDecl(c *compiler, addr vm.Reg, d *minic.VarDecl) {}
func (gccStrategy) computedMetaPush(c *compiler)                                {}
func (gccStrategy) computedMetaCheck(c *compiler, addr vm.Reg)                  {}
func (gccStrategy) chopDirectArray() bool                                       { return false }

func (gccStrategy) localArrayFrame(c *compiler, d *minic.VarDecl, cur int32) (int32, bool) {
	return cur, false
}

func (gccStrategy) mallocCall(c *compiler) {
	c.b.Emit(vm.Instr{Op: vm.HCALL, Src: vm.I(vm.HostMalloc)})
}

// ---------------------------------------------------------------------
// BCC: software bound checking with 3-word fat pointers (value, base,
// limit) and the 6-instruction check on every reference.

type bccStrategy struct{}

func (bccStrategy) ptrWords() int32                                           { return 3 }
func (bccStrategy) analyzeFunc(c *compiler, fn *minic.FuncDecl) *funcAnalysis { return emptyAnalysis() }
func (bccStrategy) layoutUniverse(c *compiler)                                {}
func (bccStrategy) globalArrayInfo(c *compiler, g *minic.VarDecl)             {}
func (bccStrategy) stringInfo(c *compiler, lit *strLit)                       {}
func (bccStrategy) emitStartupAllocs(c *compiler)                             {}

func (bccStrategy) localArrayFrame(c *compiler, d *minic.VarDecl, cur int32) (int32, bool) {
	return cur, false
}

func (bccStrategy) staticPointerMeta(c *compiler, addr uint32) {
	c.writeWord(addr+4, 0)
	c.writeWord(addr+8, 0xffffffff)
}

func (bccStrategy) loadUncheckedMeta(c *compiler) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.I(0))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.I(-1))
}

func (bccStrategy) pushPtr(c *compiler) {
	c.b.Op1(vm.PUSH, vm.R(vm.ECX))
	c.b.Op1(vm.PUSH, vm.R(vm.EDX))
	c.b.Op1(vm.PUSH, vm.R(vm.EAX))
}

func (bccStrategy) popPtr(c *compiler) {
	c.b.Op1(vm.POP, vm.R(vm.EAX))
	c.b.Op1(vm.POP, vm.R(vm.EDX))
	c.b.Op1(vm.POP, vm.R(vm.ECX))
}

func (bccStrategy) stringLitMeta(c *compiler, lit strLit) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.I(int32(lit.addr)))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.I(int32(lit.addr+lit.len)))
}

func (bccStrategy) arrayDecayMeta(c *compiler, d *minic.VarDecl) {
	size := int32(d.Type.Size())
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.R(vm.EAX))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.R(vm.EAX))
	c.b.Op(vm.ADD, vm.R(vm.ECX), vm.I(size))
}

func (bccStrategy) pointerLoadMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.M(c.slotRef(d, 4)))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.M(c.slotRef(d, 8)))
}

func (bccStrategy) scalarAddrMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.R(vm.EAX))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.R(vm.EAX))
	c.b.Op(vm.ADD, vm.R(vm.ECX), vm.I(int32(d.Type.Size())))
}

func (bccStrategy) storePointerMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.MOV, vm.M(c.slotRef(d, 4)), vm.R(vm.EDX))
	c.b.Op(vm.MOV, vm.M(c.slotRef(d, 8)), vm.R(vm.ECX))
}

func (bccStrategy) storeUncheckedPointerMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.MOV, vm.M(c.slotRef(d, 4)), vm.I(0))
	c.b.Op(vm.MOV, vm.M(c.slotRef(d, 8)), vm.I(-1))
}

func (bccStrategy) mallocCall(c *compiler) {
	// Capture the size so the fat pointer gets exact bounds.
	c.b.Op(vm.MOV, vm.R(vm.ESI), vm.R(vm.EAX))
	c.b.Emit(vm.Instr{Op: vm.HCALL, Src: vm.I(vm.HostMalloc)})
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.R(vm.EAX))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.R(vm.EAX))
	c.b.Op(vm.ADD, vm.R(vm.ECX), vm.R(vm.ESI))
}

func (bccStrategy) pathFor(c *compiler, decl *minic.VarDecl) accessPath {
	return pathSoft
}

func (bccStrategy) emitCheckForDecl(c *compiler, addr vm.Reg, d *minic.VarDecl) {
	switch {
	case d.Type.Kind == minic.TypeArray && d.Storage == minic.StorageGlobal:
		c.emitSoftCheck(addr, bccConstMeta(d))
	case d.Type.Kind == minic.TypeArray:
		c.emitSoftCheck(addr, checkMeta{kind: metaFrame, decl: d})
	default:
		c.emitSoftCheck(addr, checkMeta{kind: metaSlot, decl: d})
	}
}

func (bccStrategy) computedMetaPush(c *compiler) {
	c.b.Op1(vm.PUSH, vm.R(vm.ECX))
	c.b.Op1(vm.PUSH, vm.R(vm.EDX))
}

func (bccStrategy) computedMetaCheck(c *compiler, addr vm.Reg) {
	c.b.Op1(vm.POP, vm.R(vm.ESI)) // base
	c.b.Op1(vm.POP, vm.R(vm.EDI)) // limit
	c.emitSoftCheck(addr, checkMeta{kind: metaRegs})
}

func (bccStrategy) chopDirectArray() bool { return true }

// ---------------------------------------------------------------------
// Cash: segmentation-hardware checking. 2-word pointers (value + shadow
// info pointer), one segment per array, segment registers assigned FCFS
// per outermost loop, software fall-back for spilled objects, and no
// checks outside loops (§3.2–§3.8).

type cashStrategy struct{}

func (cashStrategy) ptrWords() int32 { return 2 }

func (cashStrategy) analyzeFunc(c *compiler, fn *minic.FuncDecl) *funcAnalysis {
	return analyzeFunc(fn, c.segRegs)
}

func (cashStrategy) layoutUniverse(c *compiler) {
	c.univInfo = c.allocData(vm.InfoStructSize, 4)
	c.writeWord(c.univInfo, uint32(vm.FlatDataSelector))
	c.writeWord(c.univInfo+4, 0)
	c.writeWord(c.univInfo+8, 0xffffffff)
}

func (cashStrategy) globalArrayInfo(c *compiler, g *minic.VarDecl) {
	// "When a 100-byte array is statically allocated, Cash allocates
	// 112 bytes, with the first three words dedicated to this array's
	// information structure." (§3.2)
	c.gInfo[g] = c.allocData(vm.InfoStructSize, 4)
}

func (cashStrategy) staticPointerMeta(c *compiler, addr uint32) {
	c.writeWord(addr+4, c.univInfo)
}

func (cashStrategy) stringInfo(c *compiler, lit *strLit) {
	lit.info = c.allocData(vm.InfoStructSize, 4)
}

func (cashStrategy) localArrayFrame(c *compiler, d *minic.VarDecl, cur int32) (int32, bool) {
	cur -= vm.InfoStructSize
	c.localInfo[d] = cur
	return cur, true
}

func (cashStrategy) emitStartupAllocs(c *compiler) {
	c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.SysSetLDTCallGate))
	c.b.Emit(vm.Instr{Op: vm.INT, Src: vm.I(0x80)})
	for _, g := range c.src.Globals {
		if g.Type.Kind != minic.TypeArray {
			continue
		}
		c.emitGateAlloc(vm.I(int32(g.Addr)), int32(g.Type.Size()), vm.I(int32(c.gInfo[g])))
		c.stats[StatSegments]++
	}
	for _, lit := range c.strLits {
		c.emitGateAlloc(vm.I(int32(lit.addr)), int32(lit.len), vm.I(int32(lit.info)))
		c.stats[StatSegments]++
	}
}

func (cashStrategy) loadUncheckedMeta(c *compiler) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.I(int32(c.univInfo)))
}

func (cashStrategy) pushPtr(c *compiler) {
	c.b.Op1(vm.PUSH, vm.R(vm.EDX))
	c.b.Op1(vm.PUSH, vm.R(vm.EAX))
}

func (cashStrategy) popPtr(c *compiler) {
	c.b.Op1(vm.POP, vm.R(vm.EAX))
	c.b.Op1(vm.POP, vm.R(vm.EDX))
}

func (cashStrategy) stringLitMeta(c *compiler, lit strLit) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.I(int32(lit.info)))
}

func (cashStrategy) arrayDecayMeta(c *compiler, d *minic.VarDecl) {
	if d.Storage == minic.StorageGlobal {
		c.b.Op(vm.MOV, vm.R(vm.EDX), vm.I(int32(c.gInfo[d])))
	} else {
		c.b.Op(vm.LEA, vm.R(vm.EDX), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.localInfo[d]}))
	}
}

func (cashStrategy) pointerLoadMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.M(c.slotRef(d, 4)))
}

func (cashStrategy) scalarAddrMeta(c *compiler, d *minic.VarDecl) {
	// Cash associates scalars with the global segment, disabling
	// checks (§3.9).
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.I(int32(c.univInfo)))
}

func (cashStrategy) storePointerMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.MOV, vm.M(c.slotRef(d, 4)), vm.R(vm.EDX))
}

func (cashStrategy) storeUncheckedPointerMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.MOV, vm.M(c.slotRef(d, 4)), vm.I(int32(c.univInfo)))
}

func (cashStrategy) mallocCall(c *compiler) {
	// The info structure sits just below the returned array (§3.2):
	// shadow = ptr - 12.
	c.b.Emit(vm.Instr{Op: vm.HCALL, Src: vm.I(vm.HostMalloc)})
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.R(vm.EAX))
	c.b.Op(vm.SUB, vm.R(vm.EDX), vm.I(vm.InfoStructSize))
}

func (cashStrategy) pathFor(c *compiler, decl *minic.VarDecl) accessPath {
	if c.inLoop == 0 {
		// Cash checks array-like references inside loops only (§1).
		return pathNone
	}
	if lc := c.topLoop(); lc != nil && decl != nil {
		if _, ok := lc.info.assigned[decl]; ok {
			return pathSeg
		}
	}
	return pathSoft
}

func (cashStrategy) emitCheckForDecl(c *compiler, addr vm.Reg, d *minic.VarDecl) {
	// Spilled reference: bounds live in the info structure.
	c.loadShadowInto(d)
	c.emitSoftCheck(addr, checkMeta{kind: metaShad, shadowOp: vm.R(vm.ESI)})
}

func (cashStrategy) computedMetaPush(c *compiler) {
	c.b.Op1(vm.PUSH, vm.R(vm.EDX))
}

func (cashStrategy) computedMetaCheck(c *compiler, addr vm.Reg) {
	c.b.Op1(vm.POP, vm.R(vm.ESI)) // shadow
	c.emitSoftCheck(addr, checkMeta{kind: metaShad, shadowOp: vm.R(vm.ESI)})
}

func (cashStrategy) chopDirectArray() bool { return false }
