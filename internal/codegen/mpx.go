package codegen

import (
	"cash/internal/minic"
	"cash/internal/vm"
)

// MPX: Intel MPX-style bound checking. Pointers stay thin (1 word, so
// aggregate layouts match GCC's exactly — the interoperability property
// MPX was designed for); bounds live beside the program in a shadow
// bounds table keyed by the address of the pointer's slot, maintained
// with bndstx/bndldx, and checks are bndcl/bndcu pairs. The register
// pair EDX (lower) / ECX (upper exclusive) plays the role of a bnd
// register for in-flight pointer values, mirroring BCC's metadata
// register convention so the two strategies differ only in where
// at-rest bounds live and what the checks cost.
//
// Faithful cost structure (see internal/vm/cycles.go): the checks are
// 1-cycle compare-class ops — MPX's selling point — while every
// bndldx/bndstx pays the two-level Bounds Directory walk, which is
// where MPX overhead concentrates on pointer-heavy code.
//
// Faithfully inherited weakness: bounds stored through anything other
// than bndstx go stale. A pointer overwritten through a computed lvalue
// keeps its old table entry, exactly the MPX hazard the literature
// documents; BCC's adjacent metadata words have the same blind spot, so
// differential runs agree.

type mpxStrategy struct{}

func (mpxStrategy) ptrWords() int32                                           { return 1 }
func (mpxStrategy) analyzeFunc(c *compiler, fn *minic.FuncDecl) *funcAnalysis { return emptyAnalysis() }
func (mpxStrategy) layoutUniverse(c *compiler)                                {}
func (mpxStrategy) globalArrayInfo(c *compiler, g *minic.VarDecl)             {}
func (mpxStrategy) stringInfo(c *compiler, lit *strLit)                       {}
func (mpxStrategy) emitStartupAllocs(c *compiler)                             {}

func (mpxStrategy) localArrayFrame(c *compiler, d *minic.VarDecl, cur int32) (int32, bool) {
	return cur, false
}

// staticPointerMeta is a no-op: a slot with no bounds-table entry reads
// as INIT (unbounded) under bndldx, which is exactly the meaning BCC
// writes out as [0, 4GiB) metadata words.
func (mpxStrategy) staticPointerMeta(c *compiler, addr uint32) {}

func (mpxStrategy) loadUncheckedMeta(c *compiler) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.I(0))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.I(-1))
}

// pushPtr spills a pointer by pushing the value word and keying the
// bounds table with the spill slot's address — the bndstx-on-stack
// protocol real MPX compilers use. Because a cdecl argument slot is the
// same physical address in caller and callee, this same sequence passes
// bounds across calls with 1-word argument slots.
func (mpxStrategy) pushPtr(c *compiler) {
	c.b.Op1(vm.PUSH, vm.R(vm.EAX))
	c.b.Op(vm.BNDSTX, vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.ESP, HasBase: true}), vm.I(1))
}

func (mpxStrategy) popPtr(c *compiler) {
	c.b.Emit(vm.Instr{Op: vm.BNDLDX, Src: vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.ESP, HasBase: true})})
	c.b.Op1(vm.POP, vm.R(vm.EAX))
}

func (mpxStrategy) stringLitMeta(c *compiler, lit strLit) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.I(int32(lit.addr)))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.I(int32(lit.addr+lit.len)))
}

func (mpxStrategy) arrayDecayMeta(c *compiler, d *minic.VarDecl) {
	size := int32(d.Type.Size())
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.R(vm.EAX))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.R(vm.EAX))
	c.b.Op(vm.ADD, vm.R(vm.ECX), vm.I(size))
}

func (mpxStrategy) pointerLoadMeta(c *compiler, d *minic.VarDecl) {
	c.b.Emit(vm.Instr{Op: vm.BNDLDX, Src: vm.M(c.slotRef(d, 0))})
}

func (mpxStrategy) scalarAddrMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.R(vm.EAX))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.R(vm.EAX))
	c.b.Op(vm.ADD, vm.R(vm.ECX), vm.I(int32(d.Type.Size())))
}

func (mpxStrategy) storePointerMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.BNDSTX, vm.M(c.slotRef(d, 0)), vm.I(1))
}

func (mpxStrategy) storeUncheckedPointerMeta(c *compiler, d *minic.VarDecl) {
	c.b.Op(vm.BNDSTX, vm.M(c.slotRef(d, 0)), vm.I(0))
}

func (mpxStrategy) mallocCall(c *compiler) {
	// Capture the size so the returned pointer gets exact bounds.
	c.b.Op(vm.MOV, vm.R(vm.ESI), vm.R(vm.EAX))
	c.b.Emit(vm.Instr{Op: vm.HCALL, Src: vm.I(vm.HostMalloc)})
	c.b.Op(vm.MOV, vm.R(vm.EDX), vm.R(vm.EAX))
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.R(vm.EAX))
	c.b.Op(vm.ADD, vm.R(vm.ECX), vm.R(vm.ESI))
}

func (mpxStrategy) pathFor(c *compiler, decl *minic.VarDecl) accessPath {
	return pathSoft
}

func (mpxStrategy) emitCheckForDecl(c *compiler, addr vm.Reg, d *minic.VarDecl) {
	switch {
	case d.Type.Kind == minic.TypeArray && d.Storage == minic.StorageGlobal:
		c.emitMPXCheck(addr, bccConstMeta(d))
	case d.Type.Kind == minic.TypeArray:
		c.emitMPXCheck(addr, checkMeta{kind: metaFrame, decl: d})
	default:
		c.emitMPXCheck(addr, checkMeta{kind: metaSlot, decl: d})
	}
}

func (mpxStrategy) computedMetaPush(c *compiler) {
	c.b.Op1(vm.PUSH, vm.R(vm.ECX))
	c.b.Op1(vm.PUSH, vm.R(vm.EDX))
}

func (mpxStrategy) computedMetaCheck(c *compiler, addr vm.Reg) {
	c.b.Op1(vm.POP, vm.R(vm.ESI)) // lower
	c.b.Op1(vm.POP, vm.R(vm.EDI)) // upper
	c.emitMPXCheck(addr, checkMeta{kind: metaRegs})
}

func (mpxStrategy) chopDirectArray() bool { return true }

// emitMPXCheck emits the bndcl/bndcu check pair for the address held in
// addr, resolving the bounds source per checkMeta like emitSoftCheck
// does for the compare-sequence strategies. The instructions carry the
// current check id (an anonymous, pass-ineligible one is opened when
// the caller hasn't) so passes can remove or patch whole checks.
//
// No instruction carries NoteSWCheck: like BOUND, bndcl counts its own
// execution in the interpreter closure, so tier-2 superblock prefix
// sums cannot double-count it.
func (c *compiler) emitMPXCheck(addr vm.Reg, meta checkMeta) {
	if c.b.CurCheck() == 0 {
		id := c.newCheck()
		c.checks[id] = &checkRec{id: id}
		prev := c.b.SetCheck(id)
		defer c.b.SetCheck(prev)
	}
	switch meta.kind {
	case metaConst:
		c.b.Op(vm.BNDCL, vm.R(addr), vm.I(int32(meta.lo)))
		c.b.Op(vm.BNDCU, vm.R(addr), vm.I(int32(meta.hi)))
	case metaSlot:
		c.b.Emit(vm.Instr{Op: vm.BNDLDX, Src: vm.M(c.slotRef(meta.decl, 0))})
		c.b.Op(vm.BNDCL, vm.R(addr), vm.R(vm.EDX))
		c.b.Op(vm.BNDCU, vm.R(addr), vm.R(vm.ECX))
	case metaRegs:
		c.b.Op(vm.BNDCL, vm.R(addr), vm.R(vm.ESI))
		c.b.Op(vm.BNDCU, vm.R(addr), vm.R(vm.EDI))
	case metaFrame:
		d := meta.decl
		size := int32(d.Type.Size())
		c.b.Op(vm.LEA, vm.R(vm.ESI), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d]}))
		c.b.Op(vm.BNDCL, vm.R(addr), vm.R(vm.ESI))
		c.b.Op(vm.LEA, vm.R(vm.ESI), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d] + size}))
		c.b.Op(vm.BNDCU, vm.R(addr), vm.R(vm.ESI))
	}
	c.stats[StatSWChecks]++
}
