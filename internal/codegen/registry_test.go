package codegen

import (
	"strings"
	"testing"

	"cash/internal/vm"
)

// TestStrategyRegistry pins the registry contents: the four built-in
// strategies in registration order, with their kinds and vm modes.
func TestStrategyRegistry(t *testing.T) {
	got := Strategies()
	want := []struct {
		name string
		kind StrategyKind
		mode vm.Mode
	}{
		{"gcc", KindLowering, vm.ModeGCC},
		{"bcc", KindLowering, vm.ModeBCC},
		{"cash", KindHardware, vm.ModeCash},
		{"mpx", KindHardware, vm.ModeMPX},
	}
	if len(got) != len(want) {
		t.Fatalf("Strategies() = %d entries, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Name != w.name || got[i].Kind != w.kind || got[i].Mode != w.mode {
			t.Errorf("Strategies()[%d] = %+v, want name=%q kind=%q mode=%v",
				i, got[i], w.name, w.kind, w.mode)
		}
		if got[i].Description == "" {
			t.Errorf("strategy %q has no description", w.name)
		}
	}
	names := StrategyNames()
	for i, w := range want {
		if names[i] != w.name {
			t.Errorf("StrategyNames()[%d] = %q, want %q", i, names[i], w.name)
		}
	}
}

// TestStrategyByNameUnknown pins the unknown-name error: it must list
// every valid name so CLI users see their options.
func TestStrategyByNameUnknown(t *testing.T) {
	if _, ok := StrategyByName("asan"); ok {
		t.Fatal("unregistered strategy resolved")
	}
	err := UnknownStrategyError("asan")
	for _, want := range []string{`"asan"`, "gcc", "bcc", "cash", "mpx"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-strategy error %q does not mention %s", err, want)
		}
	}
}

// TestDuplicateStrategyRegistrationPanics: re-registering a taken name
// is a programming error and must fail loudly at init time, not shadow
// the existing strategy.
func TestDuplicateStrategyRegistrationPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate registration did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, `duplicate strategy registration "cash"`) {
			t.Fatalf("panic %v does not name the duplicate", r)
		}
	}()
	registerStrategy(StrategyInfo{Name: "cash", Mode: vm.ModeCash}, cashStrategy{})
}

// TestUnknownModeRejectedAtCompile: a vm mode with no registered
// strategy fails Config validation.
func TestUnknownModeRejected(t *testing.T) {
	prog := mustParse(t, "int main() { return 0; }")
	_, err := Compile(prog, Config{Mode: vm.Mode(99)})
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("unregistered mode accepted: %v", err)
	}
}
