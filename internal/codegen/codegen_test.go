package codegen

import (
	"errors"
	"testing"

	"cash/internal/minic"
	"cash/internal/vm"
)

func compile(t *testing.T, src string, cfg Config) *vm.Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Compile(prog, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func runMode(t *testing.T, src string, cfg Config, extra ...vm.Option) (*vm.Result, error) {
	t.Helper()
	p := compile(t, src, cfg)
	m, err := vm.New(p, cfg.Mode, extra...)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func mustRunMode(t *testing.T, src string, cfg Config) *vm.Result {
	t.Helper()
	res, err := runMode(t, src, cfg)
	if err != nil {
		t.Fatalf("run (%v): %v", cfg.Mode, err)
	}
	return res
}

var allModes = []vm.Mode{vm.ModeGCC, vm.ModeBCC, vm.ModeCash, vm.ModeMPX}

// runAllModes runs src under every checking strategy and requires
// identical output.
func runAllModes(t *testing.T, src string) map[vm.Mode]*vm.Result {
	t.Helper()
	results := make(map[vm.Mode]*vm.Result, len(allModes))
	var ref []int32
	for _, mode := range allModes {
		res := mustRunMode(t, src, Config{Mode: mode})
		results[mode] = res
		if mode == vm.ModeGCC {
			ref = res.Output
			continue
		}
		if len(res.Output) != len(ref) {
			t.Fatalf("%v output length %d, gcc %d\n%v vs %v",
				mode, len(res.Output), len(ref), res.Output, ref)
		}
		for i := range ref {
			if res.Output[i] != ref[i] {
				t.Fatalf("%v output[%d] = %d, gcc %d", mode, i, res.Output[i], ref[i])
			}
		}
	}
	return results
}

func TestArithmeticPrograms(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []int32
	}{
		{
			name: "constants and ops",
			src: `void main() {
				printi(1 + 2 * 3);
				printi((1 + 2) * 3);
				printi(100 / 7);
				printi(100 % 7);
				printi(-5);
				printi(~0);
				printi(1 << 10);
				printi(-64 >> 3);
				printi(0xff & 0x0f | 0x30 ^ 0x11);
			}`,
			want: []int32{7, 9, 14, 2, -5, -1, 1024, -8, 47},
		},
		{
			name: "comparisons",
			src: `void main() {
				printi(3 < 4); printi(4 < 3); printi(3 <= 3);
				printi(3 == 3); printi(3 != 3); printi(5 >= 9);
				printi(!0); printi(!7);
				printi(1 && 2); printi(1 && 0); printi(0 || 3); printi(0 || 0);
			}`,
			want: []int32{1, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 0},
		},
		{
			name: "variables and compound assignment",
			src: `void main() {
				int x = 10;
				x += 5; printi(x);
				x -= 3; printi(x);
				x *= 2; printi(x);
				x /= 4; printi(x);
				x %= 4; printi(x);
				x <<= 3; printi(x);
				x >>= 1; printi(x);
				x |= 0x10; printi(x);
				x &= 0x1c; printi(x);
				x ^= 0xff; printi(x);
			}`,
			want: []int32{15, 12, 24, 6, 2, 16, 8, 24, 24, 231},
		},
		{
			name: "inc dec",
			src: `void main() {
				int i = 5;
				printi(i++); printi(i);
				printi(++i); printi(i);
				printi(i--); printi(i);
				printi(--i); printi(i);
			}`,
			want: []int32{5, 6, 7, 7, 7, 6, 5, 5},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, mode := range allModes {
				res := mustRunMode(t, tt.src, Config{Mode: mode})
				if len(res.Output) != len(tt.want) {
					t.Fatalf("%v: output %v, want %v", mode, res.Output, tt.want)
				}
				for i, w := range tt.want {
					if res.Output[i] != w {
						t.Fatalf("%v: output[%d] = %d, want %d", mode, i, res.Output[i], w)
					}
				}
			}
		})
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int collatzSteps(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) n = n / 2;
		else n = 3 * n + 1;
		steps++;
	}
	return steps;
}
void main() {
	printi(collatzSteps(27));
	int s = 0;
	for (int i = 0; i < 100; i++) {
		if (i % 3 == 0) continue;
		if (i > 50) break;
		s += i;
	}
	printi(s);
}`
	for _, mode := range allModes {
		res := mustRunMode(t, src, Config{Mode: mode})
		if res.Output[0] != 111 {
			t.Fatalf("%v: collatz(27) = %d, want 111", mode, res.Output[0])
		}
		// Sum of 0..50 excluding multiples of 3 (the break at i>50 is
		// only reached at i=52, the first non-multiple of 3 above 50).
		if res.Output[1] != 867 {
			t.Fatalf("%v: loop sum = %d, want 867", mode, res.Output[1])
		}
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int gcd(int a, int b) {
	while (b != 0) {
		int t = b;
		b = a % b;
		a = t;
	}
	return a;
}
void main() {
	printi(fib(15));
	printi(gcd(1071, 462));
}`
	for _, mode := range allModes {
		res := mustRunMode(t, src, Config{Mode: mode})
		if res.Output[0] != 610 || res.Output[1] != 21 {
			t.Fatalf("%v: output %v, want [610 21]", mode, res.Output)
		}
	}
}

func TestGlobalArraysAllModes(t *testing.T) {
	runAllModes(t, `
int a[10];
int init[5] = {10, 20, 30, 40, 50};
void main() {
	for (int i = 0; i < 10; i++) a[i] = i * i;
	int sum = 0;
	for (int i = 0; i < 10; i++) sum += a[i];
	printi(sum);
	for (int i = 0; i < 5; i++) printi(init[i]);
}`)
}

func TestLocalArraysAllModes(t *testing.T) {
	runAllModes(t, `
int sumSquares(int n) {
	int buf[16];
	for (int i = 0; i < n; i++) buf[i] = i * i;
	int s = 0;
	for (int i = 0; i < n; i++) s += buf[i];
	return s;
}
void main() {
	printi(sumSquares(16));
	printi(sumSquares(8));
}`)
}

func TestPointerWalkAllModes(t *testing.T) {
	runAllModes(t, `
int data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
void main() {
	int *p = data;
	int s = 0;
	for (int i = 0; i < 8; i++) {
		s += *p;
		p++;
	}
	printi(s);
	int *q = data;
	s = 0;
	while (q < data + 8) {
		s += *q++;
	}
	printi(s);
}`)
}

func TestMallocAllModes(t *testing.T) {
	runAllModes(t, `
void main() {
	int *buf = malloc(40);
	for (int i = 0; i < 10; i++) buf[i] = i * 3;
	int s = 0;
	for (int i = 0; i < 10; i++) s += buf[i];
	printi(s);
	free(buf);
	char *c = malloc(16);
	for (int i = 0; i < 16; i++) c[i] = i;
	int t = 0;
	for (int i = 0; i < 16; i++) t += c[i];
	printi(t);
	free(c);
}`)
}

func TestCharAndStringsAllModes(t *testing.T) {
	runAllModes(t, `
char msg[6] = "hello";
int strlen6(char *s) {
	int n = 0;
	while (s[n] != 0) n++;
	return n;
}
void main() {
	printi(strlen6(msg));
	for (int i = 0; i < 5; i++) printc(msg[i]);
	char local[4];
	local[0] = 'a'; local[1] = 'b'; local[2] = 0; local[3] = 0;
	printi(strlen6(local));
}`)
}

func TestMatrixMultiplyAllModes(t *testing.T) {
	runAllModes(t, `
int a[16];
int b[16];
int c[16];
void main() {
	for (int i = 0; i < 16; i++) {
		a[i] = i + 1;
		b[i] = 16 - i;
	}
	for (int i = 0; i < 4; i++) {
		for (int j = 0; j < 4; j++) {
			int s = 0;
			for (int k = 0; k < 4; k++) {
				s += a[i*4+k] * b[k*4+j];
			}
			c[i*4+j] = s;
		}
	}
	int sum = 0;
	for (int i = 0; i < 16; i++) sum += c[i];
	printi(sum);
}`)
}

func TestFunctionPointerArgsAllModes(t *testing.T) {
	runAllModes(t, `
int sum(int *p, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += p[i];
	return s;
}
void fill(int *p, int n, int v) {
	for (int i = 0; i < n; i++) p[i] = v + i;
}
int g[12];
void main() {
	fill(g, 12, 5);
	printi(sum(g, 12));
	printi(sum(&g[4], 4));
	int *h = malloc(20);
	fill(h, 5, 100);
	printi(sum(h, 5));
	free(h);
}`)
}

// --- Bound violation detection -----------------------------------------

const overflowLoop = `
int a[10];
int sink;
void main() {
	for (int i = 0; i <= 10; i++) {
		a[i] = i;
	}
	printi(a[0]);
}`

func TestOverflowDetection(t *testing.T) {
	// GCC: silently writes one past the end (into the next global).
	if _, err := runMode(t, overflowLoop, Config{Mode: vm.ModeGCC}); err != nil {
		t.Fatalf("gcc must not detect: %v", err)
	}
	// BCC: software check fault.
	_, err := runMode(t, overflowLoop, Config{Mode: vm.ModeBCC})
	var f *vm.Fault
	if !errors.As(err, &f) || f.Kind != vm.FaultSoftwareCheck {
		t.Fatalf("bcc: want software bound violation, got %v", err)
	}
	// Cash: the segment limit hardware raises #GP.
	_, err = runMode(t, overflowLoop, Config{Mode: vm.ModeCash})
	if !errors.As(err, &f) || f.Kind != vm.FaultSegmentation {
		t.Fatalf("cash: want segmentation fault, got %v", err)
	}
	if !f.IsBoundViolation() {
		t.Fatal("cash fault must count as a bound violation")
	}
}

func TestUnderflowDetection(t *testing.T) {
	src := `
int a[10];
void main() {
	for (int i = 0; i < 3; i++) {
		a[i - 2] = 7;
	}
}`
	_, err := runMode(t, src, Config{Mode: vm.ModeCash})
	var f *vm.Fault
	if !errors.As(err, &f) || !f.IsBoundViolation() {
		t.Fatalf("cash: lower bound violation must fault, got %v", err)
	}
	_, err = runMode(t, src, Config{Mode: vm.ModeBCC})
	if !errors.As(err, &f) || !f.IsBoundViolation() {
		t.Fatalf("bcc: lower bound violation must fault, got %v", err)
	}
}

func TestMallocOverflowDetection(t *testing.T) {
	src := `
void main() {
	char *buf = malloc(16);
	for (int i = 0; i < 32; i++) {
		buf[i] = 'A';
	}
}`
	_, err := runMode(t, src, Config{Mode: vm.ModeCash})
	var f *vm.Fault
	if !errors.As(err, &f) || f.Kind != vm.FaultSegmentation {
		t.Fatalf("cash: heap overflow must #GP, got %v", err)
	}
	_, err = runMode(t, src, Config{Mode: vm.ModeBCC})
	if !errors.As(err, &f) || f.Kind != vm.FaultSoftwareCheck {
		t.Fatalf("bcc: heap overflow must fail software check, got %v", err)
	}
}

func TestLocalArrayOverflowDetection(t *testing.T) {
	src := `
void smash(int n) {
	int buf[8];
	for (int i = 0; i < n; i++) buf[i] = i;
}
void main() {
	smash(9);
}`
	_, err := runMode(t, src, Config{Mode: vm.ModeCash})
	var f *vm.Fault
	if !errors.As(err, &f) || f.Kind != vm.FaultSegmentation {
		t.Fatalf("cash: stack-buffer overflow must #GP, got %v", err)
	}
}

// TestCashLoopOnlyPolicy: references outside loops are not checked (§1);
// the same overflow inside a loop is caught.
func TestCashLoopOnlyPolicy(t *testing.T) {
	outside := `
int a[4];
void main() {
	a[5] = 1;
	printi(a[5]);
}`
	res := mustRunMode(t, outside, Config{Mode: vm.ModeCash})
	if res.Output[0] != 1 {
		t.Fatalf("outside-loop write must succeed unchecked, got %v", res.Output)
	}
	if res.Stats.HWChecks != 0 {
		t.Fatalf("outside-loop refs must not be hardware-checked: %d", res.Stats.HWChecks)
	}

	inside := `
int a[4];
void main() {
	for (int i = 5; i < 6; i++) a[i] = 1;
}`
	_, err := runMode(t, inside, Config{Mode: vm.ModeCash})
	var f *vm.Fault
	if !errors.As(err, &f) || !f.IsBoundViolation() {
		t.Fatalf("inside-loop overflow must be caught, got %v", err)
	}
}

// TestSegRegSpill: a loop touching more arrays than segment registers
// falls back to software checks for the spilled arrays (§3.7).
func TestSegRegSpill(t *testing.T) {
	src := `
int a[4]; int b[4]; int c[4]; int d[4]; int e[4];
void main() {
	for (int i = 0; i < 4; i++) {
		a[i] = i; b[i] = i; c[i] = i; d[i] = i; e[i] = i;
	}
	printi(a[0] + b[1] + c[2] + d[3] + e[0]);
}`
	res := mustRunMode(t, src, Config{Mode: vm.ModeCash})
	if res.Stats.HWChecks == 0 {
		t.Fatal("first three arrays must use hardware checks")
	}
	if res.Stats.SWChecks == 0 {
		t.Fatal("arrays beyond the 3-register budget must use software checks")
	}
	// 3 arrays hardware-checked * 4 iterations = 12; 2 spilled * 4 = 8.
	if res.Stats.HWChecks != 12 {
		t.Fatalf("HWChecks = %d, want 12", res.Stats.HWChecks)
	}
	if res.Stats.SWChecks != 8 {
		t.Fatalf("SWChecks = %d, want 8", res.Stats.SWChecks)
	}

	// With 4 segment registers (SS freed, §3.7) only one array spills.
	res4 := mustRunMode(t, src, Config{Mode: vm.ModeCash, SegRegs: SegRegsWithSS})
	if res4.Stats.SWChecks != 4 {
		t.Fatalf("4-reg SWChecks = %d, want 4", res4.Stats.SWChecks)
	}
	// With 2 registers, three arrays spill.
	res2 := mustRunMode(t, src, Config{Mode: vm.ModeCash, SegRegs: DefaultSegRegs[:2]})
	if res2.Stats.SWChecks != 12 {
		t.Fatalf("2-reg SWChecks = %d, want 12", res2.Stats.SWChecks)
	}
}

// TestSpilledArrayStillChecked: the software fall-back must still catch
// overflows on spilled arrays.
func TestSpilledArrayStillChecked(t *testing.T) {
	src := `
int a[4]; int b[4]; int c[4]; int d[4];
void main() {
	for (int i = 0; i < 5; i++) {
		a[0] = 0; b[0] = 0; c[0] = 0;
		d[i] = i;
	}
}`
	_, err := runMode(t, src, Config{Mode: vm.ModeCash})
	var f *vm.Fault
	if !errors.As(err, &f) || f.Kind != vm.FaultSoftwareCheck {
		t.Fatalf("spilled array overflow must fail the software check, got %v", err)
	}
}

// TestMovingPointerInLoop: p++ keeps its segment register; the reference
// offset is recomputed from the live pointer (§3.3 variant).
func TestMovingPointerInLoop(t *testing.T) {
	src := `
int data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
void main() {
	int *p = data;
	int s = 0;
	for (int i = 0; i < 8; i++) {
		s += *p;
		p++;
	}
	printi(s);
}`
	res := mustRunMode(t, src, Config{Mode: vm.ModeCash})
	if res.Output[0] != 36 {
		t.Fatalf("sum = %d, want 36", res.Output[0])
	}
	if res.Stats.HWChecks != 8 {
		t.Fatalf("HWChecks = %d, want 8 (every deref hardware-checked)", res.Stats.HWChecks)
	}
	// And the overflowing variant faults.
	bad := `
int data[8];
void main() {
	int *p = data;
	int s = 0;
	for (int i = 0; i <= 8; i++) {
		s += *p;
		p++;
	}
	printi(s);
}`
	_, err := runMode(t, bad, Config{Mode: vm.ModeCash})
	var f *vm.Fault
	if !errors.As(err, &f) || f.Kind != vm.FaultSegmentation {
		t.Fatalf("walking past the end must #GP, got %v", err)
	}
}

// TestReassignedPointerExcluded: p = q inside the loop would make a held
// segment register stale, so such pointers take the software path.
func TestReassignedPointerExcluded(t *testing.T) {
	src := `
int a[4] = {1, 2, 3, 4};
int b[4] = {5, 6, 7, 8};
void main() {
	int *p = a;
	int s = 0;
	for (int i = 0; i < 4; i++) {
		s += p[i];
		p = b;
	}
	printi(s);
}`
	res := mustRunMode(t, src, Config{Mode: vm.ModeCash})
	if res.Output[0] != 1+6+7+8 {
		t.Fatalf("sum = %d, want 22", res.Output[0])
	}
}

func TestStaticStats(t *testing.T) {
	p := compile(t, overflowLoop, Config{Mode: vm.ModeCash})
	if p.Stats[StatHWChecks] == 0 {
		t.Error("cash must record static hardware checks")
	}
	if p.Stats[StatSegments] == 0 {
		t.Error("cash must record global segments")
	}
	pb := compile(t, overflowLoop, Config{Mode: vm.ModeBCC})
	if pb.Stats[StatSWChecks] == 0 {
		t.Error("bcc must record static software checks")
	}
	if pb.Stats[StatHWChecks] != 0 {
		t.Error("bcc must not emit hardware checks")
	}
}

// TestCodeSizeOrdering: generated text size must order GCC < Cash < BCC,
// the Table 2 / Table 6 shape.
func TestCodeSizeOrdering(t *testing.T) {
	// Large enough that per-reference check code dominates the fixed
	// Cash set-up (startup segment allocation, loop preambles).
	src := `
int a[64];
int b[64];
int c[64];
int dot(int *x, int *y, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += x[i] * y[i];
	return s;
}
void scale(int *x, int n, int k) {
	for (int i = 0; i < n; i++) x[i] = x[i] * k + x[i] / 2 - x[i] % 3;
}
void main() {
	for (int i = 0; i < 64; i++) { a[i] = i; b[i] = 2 * i; c[i] = 3 * i; }
	for (int i = 0; i < 64; i++) b[i] = a[i] * 2 + c[i];
	for (int i = 1; i < 63; i++) c[i] = a[i-1] + a[i+1] + b[i] - c[i];
	scale(a, 64, 3);
	scale(b, 64, 5);
	printi(dot(a, b, 64) + dot(b, c, 64) + dot(a, c, 64));
	int s = 0;
	for (int i = 0; i < 64; i++) s += a[i] + b[i] + c[i];
	printi(s);
}`
	gcc := compile(t, src, Config{Mode: vm.ModeGCC}).CodeSize()
	cash := compile(t, src, Config{Mode: vm.ModeCash}).CodeSize()
	bcc := compile(t, src, Config{Mode: vm.ModeBCC}).CodeSize()
	if !(gcc < cash && cash < bcc) {
		t.Fatalf("code size ordering gcc=%d cash=%d bcc=%d, want gcc < cash < bcc", gcc, cash, bcc)
	}
}

// TestCycleOrdering: on an array-heavy kernel, Cash overhead over GCC must
// be far below BCC overhead — the paper's headline result (Table 1).
func TestCycleOrdering(t *testing.T) {
	src := `
int a[256];
int b[256];
int c[256];
void main() {
	for (int i = 0; i < 256; i++) { a[i] = i; b[i] = 2 * i; }
	for (int rep = 0; rep < 50; rep++) {
		for (int i = 0; i < 256; i++) {
			c[i] = a[i] * b[i] + c[i];
		}
	}
	int s = 0;
	for (int i = 0; i < 256; i++) s += c[i];
	printi(s);
}`
	results := runAllModes(t, src)
	gcc := results[vm.ModeGCC].Cycles
	cash := results[vm.ModeCash].Cycles
	bcc := results[vm.ModeBCC].Cycles
	cashOv := float64(cash-gcc) / float64(gcc)
	bccOv := float64(bcc-gcc) / float64(gcc)
	if cashOv > 0.15 {
		t.Errorf("cash overhead = %.1f%%, want small (paper: <4%%)", cashOv*100)
	}
	if bccOv < 0.3 {
		t.Errorf("bcc overhead = %.1f%%, want large (paper: ~100%%)", bccOv*100)
	}
	if cashOv >= bccOv {
		t.Errorf("cash (%.1f%%) must beat bcc (%.1f%%)", cashOv*100, bccOv*100)
	}
	// All Cash checks on this kernel are in hardware.
	if results[vm.ModeCash].Stats.SWChecks != 0 {
		t.Errorf("cash SWChecks = %d, want 0", results[vm.ModeCash].Stats.SWChecks)
	}
}

// TestLocalArraySegmentCache: a function with a local array called inside
// a loop reuses its segment through the 3-entry cache (§3.6).
func TestLocalArraySegmentCache(t *testing.T) {
	src := `
int work(int n) {
	int buf[8];
	for (int i = 0; i < 8; i++) buf[i] = n + i;
	int s = 0;
	for (int i = 0; i < 8; i++) s += buf[i];
	return s;
}
void main() {
	int total = 0;
	for (int i = 0; i < 100; i++) total += work(i);
	printi(total);
}`
	res := mustRunMode(t, src, Config{Mode: vm.ModeCash})
	st := res.LDTStats
	if st.AllocRequests < 100 {
		t.Fatalf("AllocRequests = %d, want >= 100", st.AllocRequests)
	}
	if st.HitRatio() < 0.9 {
		t.Fatalf("cache hit ratio = %.2f, want ~0.99", st.HitRatio())
	}
}

// TestSkipReadChecks: the §3.8 security-only variant checks writes but
// not reads.
func TestSkipReadChecks(t *testing.T) {
	read := `
int a[4];
int sink;
void main() {
	int s = 0;
	for (int i = 0; i < 6; i++) s += a[i];
	printi(s);
}`
	// Normal Cash catches the read overflow.
	if _, err := runMode(t, read, Config{Mode: vm.ModeCash}); err == nil {
		t.Fatal("read overflow must be caught by default")
	}
	// Security-only mode lets it pass...
	if _, err := runMode(t, read, Config{Mode: vm.ModeCash, SkipReadChecks: true}); err != nil {
		t.Fatalf("security-only mode must skip read checks: %v", err)
	}
	// ...but still catches write overflows.
	if _, err := runMode(t, overflowLoop, Config{Mode: vm.ModeCash, SkipReadChecks: true}); err == nil {
		t.Fatal("write overflow must still be caught")
	}
}

func TestGlobalSegmentsAllocatedAtStartup(t *testing.T) {
	src := `
int a[4]; int b[8]; char s[16];
void main() { printi(0); }
`
	p := compile(t, src, Config{Mode: vm.ModeCash})
	m, err := vm.New(p, vm.ModeCash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.LDTManager().Live(); got != 3 {
		t.Fatalf("live segments = %d, want 3 (one per global array)", got)
	}
}

func TestNestedLoopsOneSetup(t *testing.T) {
	// Segment set-up must hoist outside the outermost loop: the number of
	// segment register loads must not scale with the iteration count.
	src := `
int a[8];
void main() {
	for (int i = 0; i < 8; i++) {
		for (int j = 0; j < 8; j++) {
			a[j] = i * j;
		}
	}
	printi(a[7]);
}`
	res := mustRunMode(t, src, Config{Mode: vm.ModeCash})
	// One MOVSR for the preamble, plus possibly save/restore in main.
	if res.Stats.SegRegLoads > 4 {
		t.Fatalf("SegRegLoads = %d, want hoisted (<=4)", res.Stats.SegRegLoads)
	}
	if res.Stats.HWChecks != 64 {
		t.Fatalf("HWChecks = %d, want 64", res.Stats.HWChecks)
	}
}

func TestCastsAllModes(t *testing.T) {
	runAllModes(t, `
void main() {
	char *c = malloc(8);
	int *p = (int*)c;
	for (int i = 0; i < 2; i++) p[i] = 0x01020304;
	int s = 0;
	for (int i = 0; i < 8; i++) s += c[i];
	printi(s);
	free(c);
}`)
}

func TestAddressOfScalarAllModes(t *testing.T) {
	runAllModes(t, `
void bump(int *p) { *p = *p + 1; }
void main() {
	int x = 41;
	bump(&x);
	printi(x);
}`)
}

func TestPointerDifferenceAllModes(t *testing.T) {
	runAllModes(t, `
int a[16];
void main() {
	int *p = &a[3];
	int *q = &a[11];
	printi(q - p);
}`)
}

func TestCompoundOnArrayAllModes(t *testing.T) {
	runAllModes(t, `
int a[4] = {1, 2, 3, 4};
void main() {
	for (int i = 0; i < 4; i++) {
		a[i] += 10;
		a[i] *= 2;
	}
	for (int i = 0; i < 4; i++) printi(a[i]);
	int b[2];
	b[0] = 5; b[1] = 7;
	for (int i = 0; i < 2; i++) b[i]++;
	printi(b[0] + b[1]);
}`)
}

func TestWhileWithPointerCondAllModes(t *testing.T) {
	runAllModes(t, `
char s[12] = "hello world";
void main() {
	char *p = s;
	int n = 0;
	while (*p) {
		n++;
		p++;
	}
	printi(n);
}`)
}

func TestGlobalConstExprInit(t *testing.T) {
	runAllModes(t, `
int n = 4 * 4;
int mask = (1 << 6) - 1;
void main() { printi(n); printi(mask); }
`)
}

// TestFrameReuseAcrossCalls: deep call chains with local arrays must
// allocate and free segments in a balanced way.
func TestFrameReuseAcrossCalls(t *testing.T) {
	src := `
int leaf(int n) {
	int t[4];
	for (int i = 0; i < 4; i++) t[i] = n;
	return t[3];
}
int mid(int n) {
	int u[4];
	for (int i = 0; i < 4; i++) u[i] = leaf(n + i);
	return u[0] + u[3];
}
void main() {
	printi(mid(10));
}`
	res := mustRunMode(t, src, Config{Mode: vm.ModeCash})
	if res.Output[0] != 10+13 {
		t.Fatalf("output = %v, want [23]", res.Output)
	}
	// All segments freed at exit.
	if live := res.LDTStats.PeakLive; live < 2 {
		t.Fatalf("PeakLive = %d, want >= 2 (nested frames)", live)
	}
}
