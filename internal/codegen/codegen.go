// Package codegen translates checked mini-C programs into vm.Programs
// under three compiler modes:
//
//   - GCC:  no bound checking (the paper's baseline),
//   - BCC:  software bound checking — 3-word fat pointers and the
//     6-instruction check sequence on every array/pointer reference,
//   - Cash: segmentation-hardware bound checking — 2-word pointers with a
//     3-word per-object info structure, one segment per array, segment
//     registers allocated FCFS per loop, software fall-back for spilled
//     loops, and no checks outside loops (§3.2–§3.7 of the paper).
//
// All three modes share the front end and the target ISA, so differences
// in simulated cycles and code bytes isolate the checking strategy, which
// is what the paper's tables compare.
//
// The back end lowers through the CFG-based IR in internal/ir: each mode
// is a lowering strategy (strategy.go), optional optimization passes
// transform the IR (pipeline.go, rce.go, hoist.go), and ir.Module.EmitTo
// replays the result through a vm.Builder.
package codegen

import (
	"fmt"

	"cash/internal/ir"
	"cash/internal/minic"
	"cash/internal/vm"
	"cash/internal/x86seg"
)

// DefaultSegRegs is the segment-register budget of the Cash prototype:
// ES, FS and GS (§3.7).
var DefaultSegRegs = []x86seg.SegReg{x86seg.ES, x86seg.FS, x86seg.GS}

// SegRegsWithSS is the extended 4-register budget that frees SS by
// rewriting PUSH/POP (§3.7); used by the micro-benchmark ablation.
var SegRegsWithSS = []x86seg.SegReg{x86seg.ES, x86seg.FS, x86seg.GS, x86seg.SS}

// Config selects the compiler mode and its knobs.
type Config struct {
	Mode vm.Mode
	// SegRegs is the segment-register budget for Cash mode; nil means
	// DefaultSegRegs. Truncate to model the 2-register ablation (§4.2).
	SegRegs []x86seg.SegReg
	// SkipReadChecks models the §3.8 security-only variant: only write
	// references are bound-checked. Applies to BCC and Cash.
	SkipReadChecks bool
	// UseBoundInstr makes the software checker (BCC mode, and Cash's
	// spill fall-back) use the IA-32 `bound` instruction instead of the
	// 6-instruction compare sequence. The paper (§2) notes `bound` lost
	// to the explicit sequence on the P3 — 7 cycles against 6 — which
	// this ablation measures.
	UseBoundInstr bool
	// Passes names the optimization passes to run on the IR, from
	// PassNames(): "rce" (dominance-based redundant-check elimination),
	// "hoist" (loop-invariant check hoisting), "affine" (symbolic
	// range analysis consolidating affine computed-index checks into
	// convex-hull endpoint checks) and "chop" (straight-line-region
	// consolidation of same-array stencil checks into one convex-hull
	// range check). Empty means the emitted program is byte-identical
	// to the historical direct back end.
	Passes []string
}

// Layout constants shared by all generated programs.
const (
	DataBase = 0x1000
	StackTop = 0x7fff0000
)

// Fragment names of the anonymous runtime stubs. Parenthesised so no
// mini-C function name can collide.
const (
	trapFragment    = "(trap)"
	startupFragment = "(startup)"
)

// Static code-generation statistic keys stored in Program.Stats.
const (
	StatHWChecks    = "hw_checks_static"   // references compiled to segment-checked operands
	StatSWChecks    = "sw_checks_static"   // software check sequences emitted
	StatSegments    = "static_segments"    // segments allocated for globals/strings
	StatLocalArrays = "local_array_allocs" // per-call segment alloc sites

	// Pass counters, present only when the corresponding pass ran.
	StatChecksElim    = "sw_checks_eliminated" // removed as dominated-redundant (rce)
	StatChecksHoisted = "sw_checks_hoisted"    // replaced by preheader range checks (hoist)
	StatChecksAffine  = "sw_checks_affine"     // replaced by affine endpoint checks (affine)
	StatChecksChop    = "sw_checks_chop"       // consolidated into convex-hull checks (chop)
)

// StatKeys lists every static codegen statistic key in reporting order.
func StatKeys() []string {
	return []string{
		StatHWChecks, StatSWChecks, StatChecksElim, StatChecksHoisted,
		StatChecksAffine, StatChecksChop, StatSegments, StatLocalArrays,
	}
}

type compiler struct {
	cfg   Config
	strat strategy
	// segRegs is the validated segment-register budget.
	segRegs []x86seg.SegReg
	// stackSeg is the segment register frame accesses go through:
	// normally SS. When SS is in the array-register budget the compiler
	// rewrites stack addressing to DS, as §3.7 prescribes (PUSH/POP are
	// replaced and EBP/ESP references use DS; the two segments are
	// identical flat segments under Linux).
	stackSeg x86seg.SegReg
	src      *minic.Program
	b        *ir.Builder
	data     []byte

	univInfo   uint32                    // Cash: info struct meaning "unchecked"
	boundsPool map[[2]uint32]uint32      // bound-instruction static bounds pairs
	gInfo      map[*minic.VarDecl]uint32 // Cash: global array -> info address
	strLits    []strLit                  // string literals discovered during codegen
	localInfo  map[*minic.VarDecl]int32  // Cash: local array -> info EBP offset

	fn         *minic.FuncDecl
	fa         *funcAnalysis
	frameOff   map[*minic.VarDecl]int32
	loopCtxFor map[minic.Stmt]*loopCtx
	loops      []*loopCtx
	inLoop     int
	breakLbl   []string
	contLbl    []string
	epilogue   string
	labelSeq   int

	// Pass provenance (pipeline.go, rce.go, hoist.go).
	checkSeq   int
	checks     map[int]*checkRec
	deadChecks map[int]bool // check ids removed by a pass
	declID     map[*minic.VarDecl]int
	addrTaken  map[*minic.VarDecl]bool
	wantHoist  bool
	wantAffine bool
	wantChop   bool
	hoistCands []*hoistCand
	fns        []*fnState
	curFn      *fnState

	stats map[string]uint64
}

type strLit struct {
	addr uint32
	len  uint32 // including NUL
	info uint32 // Cash info struct address (0 in other modes)
}

// loopCtx is the active outermost-loop segment assignment.
type loopCtx struct {
	info    *loopInfo
	relSlot map[*minic.VarDecl]int32 // EBP offset of hoisted (p - lower)
	lowSlot map[*minic.VarDecl]int32 // EBP offset of hoisted lower bound
}

func (c *compiler) lbl(prefix string) string {
	c.labelSeq++
	return fmt.Sprintf(".%s%d", prefix, c.labelSeq)
}

// allocData reserves n bytes in the data image with the given alignment
// and returns the linear address.
func (c *compiler) allocData(n, align uint32) uint32 {
	for uint32(len(c.data))%align != 0 {
		c.data = append(c.data, 0)
	}
	addr := DataBase + uint32(len(c.data))
	c.data = append(c.data, make([]byte, n)...)
	return addr
}

func (c *compiler) writeWord(addr uint32, v uint32) {
	off := addr - DataBase
	c.data[off] = byte(v)
	c.data[off+1] = byte(v >> 8)
	c.data[off+2] = byte(v >> 16)
	c.data[off+3] = byte(v >> 24)
}

func (c *compiler) slotSize(t *minic.Type) int32 {
	switch t.Kind {
	case minic.TypePointer:
		return c.strat.ptrWords() * 4
	case minic.TypeArray:
		return int32((t.Size() + 3) &^ 3)
	default:
		return 4
	}
}

// layoutGlobals places globals (with Cash info structures preceding each
// array, §3.2), applies constant initialisers, and creates the universal
// "unchecked" info structure.
func (c *compiler) layoutGlobals() error {
	c.strat.layoutUniverse(c)
	for _, g := range c.src.Globals {
		if g.Type.Kind == minic.TypeArray {
			c.strat.globalArrayInfo(c, g)
		}
		g.Addr = c.allocData(uint32(c.slotSize(g.Type)), 4)
		if err := c.initGlobal(g); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) initGlobal(g *minic.VarDecl) error {
	constVal := func(e minic.Expr) (int32, error) {
		v, ok := constEval(e)
		if !ok {
			return 0, fmt.Errorf("global %q: initialiser must be a constant expression", g.Name)
		}
		return v, nil
	}
	switch {
	case g.InitStr != "":
		off := g.Addr - DataBase
		copy(c.data[off:], g.InitStr)
	case g.InitList != nil:
		elem := uint32(g.Type.Elem.Size())
		for i, e := range g.InitList {
			v, err := constVal(e)
			if err != nil {
				return err
			}
			addr := g.Addr + uint32(i)*elem
			if elem == 1 {
				c.data[addr-DataBase] = byte(v)
			} else {
				c.writeWord(addr, uint32(v))
			}
		}
	case g.Init != nil:
		v, err := constVal(g.Init)
		if err != nil {
			return err
		}
		if g.Type.Kind == minic.TypePointer {
			if v != 0 {
				return fmt.Errorf("global pointer %q: only 0 initialiser supported", g.Name)
			}
			c.writeWord(g.Addr, 0)
			c.strat.staticPointerMeta(c, g.Addr)
		} else if g.Type == minic.Char {
			c.data[g.Addr-DataBase] = byte(v)
		} else {
			c.writeWord(g.Addr, uint32(v))
		}
	default:
		if g.Type.Kind == minic.TypePointer {
			c.strat.staticPointerMeta(c, g.Addr)
		}
	}
	return nil
}

// internString places a string literal in the data image (once per
// occurrence) and, in Cash mode, gives it an info structure so a segment
// can cover it like any other static array.
func (c *compiler) internString(s *minic.StringLit) strLit {
	n := uint32(len(s.Value)) + 1
	lit := strLit{len: n}
	c.strat.stringInfo(c, &lit)
	lit.addr = c.allocData(n, 1)
	copy(c.data[lit.addr-DataBase:], s.Value)
	s.Addr = lit.addr
	c.strLits = append(c.strLits, lit)
	return lit
}

// genTrap emits the shared software-bound-violation sink.
func (c *compiler) genTrap() {
	c.b.BeginFragment(trapFragment)
	c.b.Label("__bounds_trap")
	c.b.Emit(vm.Instr{Op: vm.TRAP, Sym: "software array bound violation"})
}

// genStartup emits the process entry stub: mode set-up (Cash: call gate
// and segments for global arrays and string literals, §3.4), the call to
// main, and exit. The program entry point is the fragment start,
// recomputed at emission so passes may grow or shrink earlier fragments.
func (c *compiler) genStartup() {
	c.b.BeginFragment(startupFragment)
	c.b.Label("__start")
	c.strat.emitStartupAllocs(c)
	c.b.Call("main")
	c.b.Op(vm.MOV, vm.R(vm.EBX), vm.R(vm.EAX))
	c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.SysExit))
	c.b.Emit(vm.Instr{Op: vm.INT, Src: vm.I(0x80)})
	c.b.Emit(vm.Instr{Op: vm.HLT})
}

// emitGateAlloc emits a cash_modify_ldt call-gate invocation allocating a
// segment: EBX=base (operand), ECX=size, EDX=info address (operand).
func (c *compiler) emitGateAlloc(base vm.Operand, size int32, info vm.Operand) {
	c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.GateAllocSegment))
	if base.Kind == vm.KindMem {
		c.b.Op(vm.LEA, vm.R(vm.EBX), base)
	} else {
		c.b.Op(vm.MOV, vm.R(vm.EBX), base)
	}
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.I(size))
	if info.Kind == vm.KindMem {
		c.b.Op(vm.LEA, vm.R(vm.EDX), info)
	} else {
		c.b.Op(vm.MOV, vm.R(vm.EDX), info)
	}
	c.b.Emit(vm.Instr{Op: vm.LCALL, Src: vm.I(7)})
}

// constEval folds constant integer expressions (literals and arithmetic
// over them), used for global initialisers.
func constEval(e minic.Expr) (int32, bool) {
	switch e := e.(type) {
	case *minic.NumberLit:
		return e.Value, true
	case *minic.Unary:
		v, ok := constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *minic.Binary:
		x, ok := constEval(e.X)
		if !ok {
			return 0, false
		}
		y, ok := constEval(e.Y)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		case "/":
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case "%":
			if y == 0 {
				return 0, false
			}
			return x % y, true
		case "<<":
			return x << (uint32(y) & 31), true
		case ">>":
			return x >> (uint32(y) & 31), true
		case "&":
			return x & y, true
		case "|":
			return x | y, true
		case "^":
			return x ^ y, true
		}
		return 0, false
	default:
		return 0, false
	}
}
