// Package codegen translates checked mini-C programs into vm.Programs
// under three compiler modes:
//
//   - GCC:  no bound checking (the paper's baseline),
//   - BCC:  software bound checking — 3-word fat pointers and the
//     6-instruction check sequence on every array/pointer reference,
//   - Cash: segmentation-hardware bound checking — 2-word pointers with a
//     3-word per-object info structure, one segment per array, segment
//     registers allocated FCFS per loop, software fall-back for spilled
//     loops, and no checks outside loops (§3.2–§3.7 of the paper).
//
// All three modes share the front end and the target ISA, so differences
// in simulated cycles and code bytes isolate the checking strategy, which
// is what the paper's tables compare.
package codegen

import (
	"fmt"

	"cash/internal/minic"
	"cash/internal/vm"
	"cash/internal/x86seg"
)

// DefaultSegRegs is the segment-register budget of the Cash prototype:
// ES, FS and GS (§3.7).
var DefaultSegRegs = []x86seg.SegReg{x86seg.ES, x86seg.FS, x86seg.GS}

// SegRegsWithSS is the extended 4-register budget that frees SS by
// rewriting PUSH/POP (§3.7); used by the micro-benchmark ablation.
var SegRegsWithSS = []x86seg.SegReg{x86seg.ES, x86seg.FS, x86seg.GS, x86seg.SS}

// Config selects the compiler mode and its knobs.
type Config struct {
	Mode vm.Mode
	// SegRegs is the segment-register budget for Cash mode; nil means
	// DefaultSegRegs. Truncate to model the 2-register ablation (§4.2).
	SegRegs []x86seg.SegReg
	// SkipReadChecks models the §3.8 security-only variant: only write
	// references are bound-checked. Applies to BCC and Cash.
	SkipReadChecks bool
	// UseBoundInstr makes the software checker (BCC mode, and Cash's
	// spill fall-back) use the IA-32 `bound` instruction instead of the
	// 6-instruction compare sequence. The paper (§2) notes `bound` lost
	// to the explicit sequence on the P3 — 7 cycles against 6 — which
	// this ablation measures.
	UseBoundInstr bool
}

// Layout constants shared by all generated programs.
const (
	DataBase = 0x1000
	StackTop = 0x7fff0000
)

// Static code-generation statistic keys stored in Program.Stats.
const (
	StatHWChecks    = "hw_checks_static"   // references compiled to segment-checked operands
	StatSWChecks    = "sw_checks_static"   // software check sequences emitted
	StatSegments    = "static_segments"    // segments allocated for globals/strings
	StatLocalArrays = "local_array_allocs" // per-call segment alloc sites
)

// Compile type-checks nothing: the caller must run minic.Check first.
// It returns a runnable vm.Program.
func Compile(prog *minic.Program, cfg Config) (*vm.Program, error) {
	if cfg.Mode == 0 {
		return nil, fmt.Errorf("codegen: config missing mode")
	}
	segRegs := cfg.SegRegs
	if segRegs == nil {
		segRegs = DefaultSegRegs
	}
	stackSeg := x86seg.SS
	for _, r := range segRegs {
		if r == x86seg.SS {
			stackSeg = x86seg.DS
		}
	}
	c := &compiler{
		cfg:        cfg,
		segRegs:    segRegs,
		stackSeg:   stackSeg,
		src:        prog,
		b:          vm.NewBuilder(),
		boundsPool: make(map[[2]uint32]uint32),
		gInfo:      make(map[*minic.VarDecl]uint32),
		localInfo:  make(map[*minic.VarDecl]int32),
		stats:      make(map[string]uint64),
	}
	if err := c.layoutGlobals(); err != nil {
		return nil, err
	}
	for _, fn := range prog.Funcs {
		if err := c.genFunc(fn); err != nil {
			return nil, fmt.Errorf("function %s: %w", fn.Name, err)
		}
	}
	c.genTrap()
	entry := c.genStartup()
	p, err := c.b.Finish("program")
	if err != nil {
		return nil, err
	}
	p.Entry = entry
	p.Mode = cfg.Mode.String()
	p.Data = c.data
	p.DataBase = DataBase
	heap := (DataBase + uint32(len(c.data)) + 0xfff) &^ 0xfff
	p.HeapBase = heap + 0x1000
	p.StackTop = StackTop
	for k, v := range c.stats {
		p.Stats[k] = v
	}
	return p, nil
}

// ptrWords returns the pointer-variable representation width in words:
// GCC 1 (value), Cash 2 (value + shadow info pointer), BCC 3 (value, base,
// limit) — §4.1.
func ptrWords(mode vm.Mode) int32 {
	switch mode {
	case vm.ModeCash:
		return 2
	case vm.ModeBCC:
		return 3
	default:
		return 1
	}
}

type compiler struct {
	cfg     Config
	segRegs []x86seg.SegReg
	// stackSeg is the segment register frame accesses go through:
	// normally SS. When SS is in the array-register budget the compiler
	// rewrites stack addressing to DS, as §3.7 prescribes (PUSH/POP are
	// replaced and EBP/ESP references use DS; the two segments are
	// identical flat segments under Linux).
	stackSeg x86seg.SegReg
	src      *minic.Program
	b        *vm.Builder
	data     []byte

	univInfo   uint32                    // Cash: info struct meaning "unchecked"
	boundsPool map[[2]uint32]uint32      // bound-instruction static bounds pairs
	gInfo      map[*minic.VarDecl]uint32 // Cash: global array -> info address
	strLits    []strLit                  // string literals discovered during codegen
	localInfo  map[*minic.VarDecl]int32  // Cash: local array -> info EBP offset

	fn         *minic.FuncDecl
	fa         *funcAnalysis
	frameOff   map[*minic.VarDecl]int32
	loopCtxFor map[minic.Stmt]*loopCtx
	loops      []*loopCtx
	inLoop     int
	breakLbl   []string
	contLbl    []string
	epilogue   string
	labelSeq   int

	stats map[string]uint64
}

type strLit struct {
	addr uint32
	len  uint32 // including NUL
	info uint32 // Cash info struct address (0 in other modes)
}

// loopCtx is the active outermost-loop segment assignment.
type loopCtx struct {
	info    *loopInfo
	relSlot map[*minic.VarDecl]int32 // EBP offset of hoisted (p - lower)
	lowSlot map[*minic.VarDecl]int32 // EBP offset of hoisted lower bound
}

func (c *compiler) lbl(prefix string) string {
	c.labelSeq++
	return fmt.Sprintf(".%s%d", prefix, c.labelSeq)
}

// allocData reserves n bytes in the data image with the given alignment
// and returns the linear address.
func (c *compiler) allocData(n, align uint32) uint32 {
	for uint32(len(c.data))%align != 0 {
		c.data = append(c.data, 0)
	}
	addr := DataBase + uint32(len(c.data))
	c.data = append(c.data, make([]byte, n)...)
	return addr
}

func (c *compiler) writeWord(addr uint32, v uint32) {
	off := addr - DataBase
	c.data[off] = byte(v)
	c.data[off+1] = byte(v >> 8)
	c.data[off+2] = byte(v >> 16)
	c.data[off+3] = byte(v >> 24)
}

func (c *compiler) slotSize(t *minic.Type) int32 {
	switch t.Kind {
	case minic.TypePointer:
		return ptrWords(c.cfg.Mode) * 4
	case minic.TypeArray:
		return int32((t.Size() + 3) &^ 3)
	default:
		return 4
	}
}

// layoutGlobals places globals (with Cash info structures preceding each
// array, §3.2), applies constant initialisers, and creates the universal
// "unchecked" info structure.
func (c *compiler) layoutGlobals() error {
	if c.cfg.Mode == vm.ModeCash {
		c.univInfo = c.allocData(vm.InfoStructSize, 4)
		c.writeWord(c.univInfo, uint32(vm.FlatDataSelector))
		c.writeWord(c.univInfo+4, 0)
		c.writeWord(c.univInfo+8, 0xffffffff)
	}
	for _, g := range c.src.Globals {
		if c.cfg.Mode == vm.ModeCash && g.Type.Kind == minic.TypeArray {
			// "When a 100-byte array is statically allocated, Cash
			// allocates 112 bytes, with the first three words dedicated
			// to this array's information structure." (§3.2)
			c.gInfo[g] = c.allocData(vm.InfoStructSize, 4)
		}
		g.Addr = c.allocData(uint32(c.slotSize(g.Type)), 4)
		if err := c.initGlobal(g); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) initGlobal(g *minic.VarDecl) error {
	constVal := func(e minic.Expr) (int32, error) {
		v, ok := constEval(e)
		if !ok {
			return 0, fmt.Errorf("global %q: initialiser must be a constant expression", g.Name)
		}
		return v, nil
	}
	switch {
	case g.InitStr != "":
		off := g.Addr - DataBase
		copy(c.data[off:], g.InitStr)
	case g.InitList != nil:
		elem := uint32(g.Type.Elem.Size())
		for i, e := range g.InitList {
			v, err := constVal(e)
			if err != nil {
				return err
			}
			addr := g.Addr + uint32(i)*elem
			if elem == 1 {
				c.data[addr-DataBase] = byte(v)
			} else {
				c.writeWord(addr, uint32(v))
			}
		}
	case g.Init != nil:
		v, err := constVal(g.Init)
		if err != nil {
			return err
		}
		if g.Type.Kind == minic.TypePointer {
			if v != 0 {
				return fmt.Errorf("global pointer %q: only 0 initialiser supported", g.Name)
			}
			c.writeWord(g.Addr, 0)
			c.initPointerMetaStatic(g.Addr)
		} else if g.Type == minic.Char {
			c.data[g.Addr-DataBase] = byte(v)
		} else {
			c.writeWord(g.Addr, uint32(v))
		}
	default:
		if g.Type.Kind == minic.TypePointer {
			c.initPointerMetaStatic(g.Addr)
		}
	}
	return nil
}

// initPointerMetaStatic writes "unchecked" metadata into a global pointer
// slot's extra words.
func (c *compiler) initPointerMetaStatic(addr uint32) {
	switch c.cfg.Mode {
	case vm.ModeCash:
		c.writeWord(addr+4, c.univInfo)
	case vm.ModeBCC:
		c.writeWord(addr+4, 0)
		c.writeWord(addr+8, 0xffffffff)
	}
}

// internString places a string literal in the data image (once per
// occurrence) and, in Cash mode, gives it an info structure so a segment
// can cover it like any other static array.
func (c *compiler) internString(s *minic.StringLit) strLit {
	n := uint32(len(s.Value)) + 1
	lit := strLit{len: n}
	if c.cfg.Mode == vm.ModeCash {
		lit.info = c.allocData(vm.InfoStructSize, 4)
	}
	lit.addr = c.allocData(n, 1)
	copy(c.data[lit.addr-DataBase:], s.Value)
	s.Addr = lit.addr
	c.strLits = append(c.strLits, lit)
	return lit
}

// genTrap emits the shared software-bound-violation sink.
func (c *compiler) genTrap() {
	c.b.Label("__bounds_trap")
	c.b.Emit(vm.Instr{Op: vm.TRAP, Sym: "software array bound violation"})
}

// genStartup emits the process entry stub: Cash set-up (call gate,
// segments for global arrays and string literals, §3.4), the call to
// main, and exit.
func (c *compiler) genStartup() int {
	entry := c.b.Len()
	c.b.Label("__start")
	if c.cfg.Mode == vm.ModeCash {
		c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.SysSetLDTCallGate))
		c.b.Emit(vm.Instr{Op: vm.INT, Src: vm.I(0x80)})
		for _, g := range c.src.Globals {
			if g.Type.Kind != minic.TypeArray {
				continue
			}
			c.emitGateAlloc(vm.I(int32(g.Addr)), int32(g.Type.Size()), vm.I(int32(c.gInfo[g])))
			c.stats[StatSegments]++
		}
		for _, lit := range c.strLits {
			c.emitGateAlloc(vm.I(int32(lit.addr)), int32(lit.len), vm.I(int32(lit.info)))
			c.stats[StatSegments]++
		}
	}
	c.b.Call("main")
	c.b.Op(vm.MOV, vm.R(vm.EBX), vm.R(vm.EAX))
	c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.SysExit))
	c.b.Emit(vm.Instr{Op: vm.INT, Src: vm.I(0x80)})
	c.b.Emit(vm.Instr{Op: vm.HLT})
	return entry
}

// emitGateAlloc emits a cash_modify_ldt call-gate invocation allocating a
// segment: EBX=base (operand), ECX=size, EDX=info address (operand).
func (c *compiler) emitGateAlloc(base vm.Operand, size int32, info vm.Operand) {
	c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.GateAllocSegment))
	if base.Kind == vm.KindMem {
		c.b.Op(vm.LEA, vm.R(vm.EBX), base)
	} else {
		c.b.Op(vm.MOV, vm.R(vm.EBX), base)
	}
	c.b.Op(vm.MOV, vm.R(vm.ECX), vm.I(size))
	if info.Kind == vm.KindMem {
		c.b.Op(vm.LEA, vm.R(vm.EDX), info)
	} else {
		c.b.Op(vm.MOV, vm.R(vm.EDX), info)
	}
	c.b.Emit(vm.Instr{Op: vm.LCALL, Src: vm.I(7)})
}

// constEval folds constant integer expressions (literals and arithmetic
// over them), used for global initialisers.
func constEval(e minic.Expr) (int32, bool) {
	switch e := e.(type) {
	case *minic.NumberLit:
		return e.Value, true
	case *minic.Unary:
		v, ok := constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *minic.Binary:
		x, ok := constEval(e.X)
		if !ok {
			return 0, false
		}
		y, ok := constEval(e.Y)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		case "/":
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case "%":
			if y == 0 {
				return 0, false
			}
			return x % y, true
		case "<<":
			return x << (uint32(y) & 31), true
		case ">>":
			return x >> (uint32(y) & 31), true
		case "&":
			return x & y, true
		case "|":
			return x | y, true
		case "^":
			return x ^ y, true
		}
		return 0, false
	default:
		return 0, false
	}
}
