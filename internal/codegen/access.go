package codegen

import (
	"fmt"

	"cash/internal/minic"
	"cash/internal/vm"
	"cash/internal/x86seg"
)

// This file implements the checked-memory-access paths. Every array or
// pointer reference compiles through genRef, which decides between:
//
//   - the segment path (Cash, array assigned a segment register in the
//     enclosing loop): the reference is emitted with a segment-override
//     operand, so the segment-limit hardware performs the bound check for
//     free (§3.3);
//   - the software path (BCC always; Cash for spilled arrays inside
//     loops): the classic 6-instruction check — two bound loads, two
//     compares, two conditional branches (§2) — against the object's
//     bounds, then a flat access;
//   - the unchecked path (GCC always; Cash outside loops, §3.8).
//
// Which path applies, and how the check obtains its bounds, is the
// strategy's decision (strategy.go); this file holds the shared
// machinery.

// accessPath selects the checking strategy for one reference.
type accessPath int

const (
	pathNone accessPath = iota + 1
	pathSeg
	pathSoft
)

// topLoop returns the active outermost-loop context, or nil.
func (c *compiler) topLoop() *loopCtx {
	if len(c.loops) == 0 {
		return nil
	}
	return c.loops[len(c.loops)-1]
}

// pathFor picks the access path for a reference through object decl (nil
// for computed bases).
func (c *compiler) pathFor(decl *minic.VarDecl, write bool) accessPath {
	if !write && c.cfg.SkipReadChecks {
		return pathNone
	}
	return c.strat.pathFor(c, decl)
}

// slotRef returns the memory operand of a variable's stack or data slot,
// displaced by extra bytes (for metadata words).
func (c *compiler) slotRef(d *minic.VarDecl, extra int32) vm.MemRef {
	if d.Storage == minic.StorageGlobal {
		return vm.MemRef{Seg: x86seg.DS, Disp: int32(d.Addr) + extra}
	}
	return vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d] + extra}
}

// globalSegLower returns the segment base Cash gives a global array: the
// array address for byte-granular segments, or the end-aligned page-
// granular base for arrays over 1 MiB (§3.5).
func globalSegLower(d *minic.VarDecl) uint32 {
	size := uint32(d.Type.Size())
	if size-1 <= x86seg.MaxByteLimit {
		return d.Addr
	}
	pages := (uint64(size) + x86seg.PageGranule - 1) / x86seg.PageGranule
	return d.Addr + size - uint32(pages)*x86seg.PageGranule
}

// scaleReg multiplies reg by an element size, preferring a shift.
func (c *compiler) scaleReg(r vm.Reg, elem int32) {
	switch elem {
	case 1:
	case 2:
		c.b.Op(vm.SHL, vm.R(r), vm.I(1))
	case 4:
		c.b.Op(vm.SHL, vm.R(r), vm.I(2))
	case 8:
		c.b.Op(vm.SHL, vm.R(r), vm.I(3))
	default:
		c.b.Op(vm.IMUL, vm.R(r), vm.I(elem))
	}
}

// checkMeta names where an object's bounds come from for a software
// check.
type checkMeta struct {
	kind     int // 1 const bounds, 2 BCC slot, 3 BCC regs, 4 Cash shadow operand
	lo, hi   uint32
	decl     *minic.VarDecl
	shadowOp vm.Operand // Cash: operand whose value is the info address
}

const (
	metaConst = 1
	metaSlot  = 2
	metaRegs  = 3 // BCC: base in ESI, limit in EDI (already loaded)
	metaShad  = 4
	metaFrame = 5 // BCC local array: bounds are EBP-relative
)

// emitSoftCheck emits the software bound-check sequence for the address
// held in addr. Failure branches to the shared trap. The first emitted
// instruction carries NoteSWCheck so the machine counts executions.
//
// Every check's instructions carry a check id, so a pass can remove the
// whole sequence; when the caller hasn't opened a check scope (the
// register-metadata checks of computed references), an anonymous,
// pass-ineligible id is opened here.
//
// With Config.UseBoundInstr the IA-32 `bound` instruction replaces the
// compare sequence wherever the two bounds sit adjacent in memory (fat
// pointer slots, info structures, static array bounds); the remaining
// shapes keep the explicit sequence, as a real compiler would.
func (c *compiler) emitSoftCheck(addr vm.Reg, meta checkMeta) {
	if c.b.CurCheck() == 0 {
		id := c.newCheck()
		c.checks[id] = &checkRec{id: id}
		prev := c.b.SetCheck(id)
		defer c.b.SetCheck(prev)
	}
	if c.cfg.UseBoundInstr && c.emitBoundInstr(addr, meta) {
		c.stats[StatSWChecks]++
		return
	}
	first := c.b.Len()
	switch meta.kind {
	case metaConst:
		c.b.Op(vm.MOV, vm.R(vm.ESI), vm.I(int32(meta.lo)))
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.ESI))
		c.b.Jump(vm.JB, "__bounds_trap")
		c.b.Op(vm.MOV, vm.R(vm.ESI), vm.I(int32(meta.hi)))
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.ESI))
		c.b.Jump(vm.JAE, "__bounds_trap")
	case metaSlot:
		c.b.Op(vm.MOV, vm.R(vm.ESI), vm.M(c.slotRef(meta.decl, 4)))
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.ESI))
		c.b.Jump(vm.JB, "__bounds_trap")
		c.b.Op(vm.MOV, vm.R(vm.ESI), vm.M(c.slotRef(meta.decl, 8)))
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.ESI))
		c.b.Jump(vm.JAE, "__bounds_trap")
	case metaRegs:
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.ESI))
		c.b.Jump(vm.JB, "__bounds_trap")
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.EDI))
		c.b.Jump(vm.JAE, "__bounds_trap")
	case metaFrame:
		d := meta.decl
		size := int32(d.Type.Size())
		c.b.Op(vm.LEA, vm.R(vm.ESI), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d]}))
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.ESI))
		c.b.Jump(vm.JB, "__bounds_trap")
		c.b.Op(vm.LEA, vm.R(vm.ESI), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d] + size}))
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.ESI))
		c.b.Jump(vm.JAE, "__bounds_trap")
	case metaShad:
		// Load the shadow info pointer, then bounds from info[4], info[8].
		if meta.shadowOp.Kind != vm.KindReg || meta.shadowOp.Reg != vm.ESI {
			c.b.Op(vm.MOV, vm.R(vm.ESI), meta.shadowOp)
		}
		c.b.Op(vm.MOV, vm.R(vm.EDI), vm.M(vm.MemRef{Seg: x86seg.DS, Base: vm.ESI, HasBase: true, Disp: 4}))
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.EDI))
		c.b.Jump(vm.JB, "__bounds_trap")
		c.b.Op(vm.MOV, vm.R(vm.EDI), vm.M(vm.MemRef{Seg: x86seg.DS, Base: vm.ESI, HasBase: true, Disp: 8}))
		c.b.Op(vm.CMP, vm.R(addr), vm.R(vm.EDI))
		c.b.Jump(vm.JAE, "__bounds_trap")
	}
	c.b.Instr(first).Note = vm.NoteSWCheck
	c.stats[StatSWChecks]++
}

// emitBoundInstr emits an IA-32 bound instruction when the bounds pair
// is (or can be made) adjacent in memory, and reports whether it did.
func (c *compiler) emitBoundInstr(addr vm.Reg, meta checkMeta) bool {
	switch meta.kind {
	case metaConst:
		// Static bounds live in a pooled 2-word descriptor in the data
		// image, exactly how compilers used bound in practice.
		pair := [2]uint32{meta.lo, meta.hi}
		at, ok := c.boundsPool[pair]
		if !ok {
			at = c.allocData(8, 4)
			c.writeWord(at, meta.lo)
			c.writeWord(at+4, meta.hi)
			c.boundsPool[pair] = at
		}
		c.b.Emit(vm.Instr{Op: vm.BOUND, Dst: vm.R(addr),
			Src: vm.M(vm.MemRef{Seg: x86seg.DS, Disp: int32(at)})})
		return true
	case metaSlot:
		// Fat-pointer base and limit are adjacent at slot+4, slot+8.
		c.b.Emit(vm.Instr{Op: vm.BOUND, Dst: vm.R(addr),
			Src: vm.M(c.slotRef(meta.decl, 4))})
		return true
	case metaShad:
		// Cash info structure: lower and upper at info+4, info+8.
		if meta.shadowOp.Kind != vm.KindReg || meta.shadowOp.Reg != vm.ESI {
			c.b.Op(vm.MOV, vm.R(vm.ESI), meta.shadowOp)
		}
		c.b.Emit(vm.Instr{Op: vm.BOUND, Dst: vm.R(addr),
			Src: vm.M(vm.MemRef{Seg: x86seg.DS, Base: vm.ESI, HasBase: true, Disp: 4})})
		return true
	default:
		// Register/frame-relative bounds are not adjacent in memory;
		// materialising them would cost more than the compare sequence.
		return false
	}
}

// bccConstMeta builds constant bounds for a direct array reference.
func bccConstMeta(d *minic.VarDecl) checkMeta {
	return checkMeta{kind: metaConst, lo: d.Addr, hi: d.Addr + uint32(d.Type.Size())}
}

// loadShadowInto emits code placing the info address in ESI.
func (c *compiler) loadShadowInto(d *minic.VarDecl) {
	switch {
	case d.Type.Kind == minic.TypePointer:
		c.b.Op(vm.MOV, vm.R(vm.ESI), vm.M(c.slotRef(d, 4)))
	case d.Storage == minic.StorageGlobal:
		c.b.Op(vm.MOV, vm.R(vm.ESI), vm.I(int32(c.gInfo[d])))
	default:
		c.b.Op(vm.LEA, vm.R(vm.ESI), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.localInfo[d]}))
	}
}

// accSize returns the memory access width for an element type.
func accSize(t *minic.Type) uint8 {
	if t.Kind == minic.TypeChar {
		return 1
	}
	return 4
}

// genRef compiles the address computation and bound check for a reference
// `*(base + idx)` and returns the memory operand to access. The operand
// may use EAX and EBX; the caller must use it in the immediately following
// instruction(s) and may clobber ESI/EDI freely.
//
// idx may be nil (plain dereference). elem is the element size in bytes.
func (c *compiler) genRef(base minic.Expr, idx minic.Expr, elem int32, write bool) (vm.Operand, error) {
	decl := refObject(base)
	path := c.pathFor(decl, write)

	// Fold constant indices into displacements.
	idxConst := int32(0)
	haveIdxReg := false
	evalIdx := func() error {
		if idx == nil {
			return nil
		}
		if v, ok := constEval(idx); ok {
			idxConst = v * elem
			return nil
		}
		if err := c.genExpr(idx); err != nil {
			return err
		}
		c.scaleReg(vm.EAX, elem)
		haveIdxReg = true
		return nil
	}

	switch {
	case decl != nil && decl.Type.Kind == minic.TypeArray:
		if err := evalIdx(); err != nil {
			return vm.Operand{}, err
		}
		return c.refDirectArray(decl, path, idx, idxConst, haveIdxReg)

	case decl != nil: // pointer variable
		if err := evalIdx(); err != nil {
			return vm.Operand{}, err
		}
		return c.refPointerVar(decl, path, idx, idxConst, haveIdxReg)

	default:
		return c.refComputed(base, idx, elem, path)
	}
}

// refDirectArray handles a[i] where a is an array variable.
func (c *compiler) refDirectArray(d *minic.VarDecl, path accessPath, idx minic.Expr, idxConst int32, idxReg bool) (vm.Operand, error) {
	global := d.Storage == minic.StorageGlobal
	switch path {
	case pathSeg:
		seg := c.topLoop().info.assigned[d]
		rel := idxConst
		if global {
			rel += int32(d.Addr - globalSegLower(d))
		}
		c.stats[StatHWChecks]++
		c.b.TagMem(refTag{decl: d, exact: true})
		if idxReg {
			return vm.M(vm.MemRef{Seg: seg, Base: vm.EAX, HasBase: true, Disp: rel}), nil
		}
		return vm.M(vm.MemRef{Seg: seg, Disp: rel}), nil

	case pathSoft:
		// Materialise the address in EBX, check, access flat.
		if global {
			if idxReg {
				c.b.Op(vm.LEA, vm.R(vm.EBX), vm.M(vm.MemRef{Seg: x86seg.DS, Base: vm.EAX, HasBase: true, Disp: int32(d.Addr) + idxConst}))
			} else {
				c.b.Op(vm.MOV, vm.R(vm.EBX), vm.I(int32(d.Addr)+idxConst))
			}
		} else {
			ref := vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d] + idxConst}
			if idxReg {
				ref.Index = vm.EAX
				ref.HasIndex = true
				ref.Scale = 1
			}
			c.b.Op(vm.LEA, vm.R(vm.EBX), vm.M(ref))
		}
		c.checkedDeclRef(vm.EBX, d, idx, idxConst, idxReg)
		c.b.TagMem(refTag{decl: d, exact: true})
		return vm.M(vm.MemRef{Seg: x86seg.DS, Base: vm.EBX, HasBase: true}), nil

	default: // pathNone
		c.b.TagMem(refTag{decl: d})
		if global {
			ref := vm.MemRef{Seg: x86seg.DS, Disp: int32(d.Addr) + idxConst}
			if idxReg {
				ref.Base = vm.EAX
				ref.HasBase = true
			}
			return vm.M(ref), nil
		}
		ref := vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d] + idxConst}
		if idxReg {
			ref.Index = vm.EAX
			ref.HasIndex = true
			ref.Scale = 1
		}
		return vm.M(ref), nil
	}
}

// refPointerVar handles p[i] / *p where p is a named pointer variable.
// Pointer-mediated references are never tagged exact: the pointee's
// bounds may be the universal "unchecked" info, so a checked store can
// still land anywhere.
func (c *compiler) refPointerVar(d *minic.VarDecl, path accessPath, idx minic.Expr, idxConst int32, idxReg bool) (vm.Operand, error) {
	switch path {
	case pathSeg:
		lc := c.topLoop()
		seg := lc.info.assigned[d]
		if lc.info.modified[d] {
			// The pointer moves inside the loop (p++ style): recompute
			// the segment offset from its live value and the hoisted
			// lower bound — one SUB more than GCC's plain load.
			low, ok := lc.lowSlot[d]
			if !ok {
				return vm.Operand{}, fmt.Errorf("codegen: missing lower slot for %s", d.Name)
			}
			c.b.Op(vm.MOV, vm.R(vm.EBX), vm.M(c.slotRef(d, 0)))
			c.b.Op(vm.SUB, vm.R(vm.EBX), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: low}))
		} else {
			// Hoisted (p - lower) replaces GCC's load of p: same
			// per-reference instruction count (§3.3).
			rel, ok := lc.relSlot[d]
			if !ok {
				return vm.Operand{}, fmt.Errorf("codegen: missing relbase slot for %s", d.Name)
			}
			c.b.Op(vm.MOV, vm.R(vm.EBX), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: rel}))
		}
		c.stats[StatHWChecks]++
		c.b.TagMem(refTag{decl: d})
		ref := vm.MemRef{Seg: seg, Base: vm.EBX, HasBase: true, Disp: idxConst}
		if idxReg {
			ref.Index = vm.EAX
			ref.HasIndex = true
			ref.Scale = 1
		}
		return vm.M(ref), nil

	case pathSoft:
		c.b.Op(vm.MOV, vm.R(vm.EBX), vm.M(c.slotRef(d, 0)))
		if idxReg {
			c.b.Op(vm.ADD, vm.R(vm.EBX), vm.R(vm.EAX))
		}
		if idxConst != 0 {
			c.b.Op(vm.ADD, vm.R(vm.EBX), vm.I(idxConst))
		}
		c.checkedDeclRef(vm.EBX, d, idx, idxConst, idxReg)
		c.b.TagMem(refTag{decl: d})
		return vm.M(vm.MemRef{Seg: x86seg.DS, Base: vm.EBX, HasBase: true}), nil

	default:
		c.b.Op(vm.MOV, vm.R(vm.EBX), vm.M(c.slotRef(d, 0)))
		c.b.TagMem(refTag{decl: d})
		ref := vm.MemRef{Seg: x86seg.DS, Base: vm.EBX, HasBase: true, Disp: idxConst}
		if idxReg {
			ref.Index = vm.EAX
			ref.HasIndex = true
			ref.Scale = 1
		}
		return vm.M(ref), nil
	}
}

// refComputed handles references whose base is a computed pointer
// expression (call result, pointer arithmetic result, cast chain). The
// base's metadata travels in registers, so software checks use it
// directly; such references can never hold a segment register.
func (c *compiler) refComputed(base minic.Expr, idx minic.Expr, elem int32, path accessPath) (vm.Operand, error) {
	if err := c.genExpr(base); err != nil {
		return vm.Operand{}, err
	}
	needMeta := path == pathSoft
	// Save base value (and metadata when a software check needs it).
	if needMeta {
		c.strat.computedMetaPush(c)
	}
	c.b.Op1(vm.PUSH, vm.R(vm.EAX))
	idxReg := false
	if idx != nil {
		if v, ok := constEval(idx); ok {
			if v != 0 {
				// Fold into displacement below via register add.
				c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(v*elem))
				idxReg = true
			}
		} else {
			if err := c.genExpr(idx); err != nil {
				return vm.Operand{}, err
			}
			c.scaleReg(vm.EAX, elem)
			idxReg = true
		}
	}
	c.b.Op1(vm.POP, vm.R(vm.EBX))
	if idxReg {
		c.b.Op(vm.ADD, vm.R(vm.EBX), vm.R(vm.EAX))
	}
	if needMeta {
		c.strat.computedMetaCheck(c, vm.EBX)
	}
	c.b.TagMem(refTag{})
	return vm.M(vm.MemRef{Seg: x86seg.DS, Base: vm.EBX, HasBase: true}), nil
}
