package codegen

import (
	"cash/internal/ir"
	"cash/internal/minic"
	"cash/internal/vm"
)

// Loop-invariant check hoisting. For a counted loop
//
//	for (v = LO; v < H; v++) ... a[v] ...
//
// whose body performs the software check on a[v] unconditionally each
// iteration, the per-iteration check is replaced by two range checks in
// a synthesized preheader: the lowest referenced address (a + LO*elem)
// and the highest (a + (H-1)*elem). The loop itself then runs checked
// but check-free. This is sound because the reference executes on every
// iteration and the loop visits every index in [LO, H): if any endpoint
// is out of bounds the original execution was going to trap too — the
// transformed program merely traps before the loop instead of at the
// offending iteration, which preserves the violation verdict (the
// documented observable) while possibly truncating earlier output.
//
// Candidacy is established during lowering (enterHoistLoop /
// noteHoistRef below); the transform itself runs as the "hoist" pass
// after lowering (and after rce, which may have already deleted some of
// the candidate checks).

// countedLoop is the recognized shape of a hoistable for-loop.
type countedLoop struct {
	v       *minic.VarDecl // induction variable: v = lo; v < hi; v++
	lo      int32
	hiConst int32          // constant bound, when hiVar is nil
	hiVar   *minic.VarDecl // scalar bound variable, unmodified in the body
	incl    bool           // "<=" comparison
}

// hoistCand is one candidate loop: the checks eligible for hoisting,
// grouped by checked array, gathered while its body lowers.
type hoistCand struct {
	cl    countedLoop
	loop  *ir.Loop
	s     *minic.ForStmt // source statement (affine pass invariance scan)
	depth int            // conditional-nesting depth during lowering; refs qualify at 0
	// order/groups: per-array check ids, in first-reference order.
	order  []*minic.VarDecl
	groups map[*minic.VarDecl][]int
}

// ---------------------------------------------------------------------
// Lowering-time candidacy.

// scanAddrTaken records every variable whose address is taken anywhere
// in the function; such variables can alias through pointers and are
// disqualified as induction or bound variables.
func (c *compiler) scanAddrTaken(s minic.Stmt) {
	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		switch e := e.(type) {
		case *minic.Unary:
			if e.Op == "&" {
				if vr, ok := e.X.(*minic.VarRef); ok && vr.Decl != nil {
					c.addrTaken[vr.Decl] = true
				}
			}
			walkExpr(e.X)
		case *minic.IncDec:
			walkExpr(e.X)
		case *minic.Binary:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *minic.Assign:
			walkExpr(e.LHS)
			walkExpr(e.RHS)
		case *minic.Index:
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *minic.Call:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *minic.Cast:
			walkExpr(e.X)
		}
	}
	var walkStmt func(s minic.Stmt)
	walkStmt = func(s minic.Stmt) {
		switch s := s.(type) {
		case *minic.BlockStmt:
			for _, sub := range s.Stmts {
				walkStmt(sub)
			}
		case *minic.DeclStmt:
			for _, d := range s.Decls {
				if d.Init != nil {
					walkExpr(d.Init)
				}
				for _, e := range d.InitList {
					walkExpr(e)
				}
			}
		case *minic.ExprStmt:
			walkExpr(s.X)
		case *minic.IfStmt:
			walkExpr(s.Cond)
			if s.Then != nil {
				walkStmt(s.Then)
			}
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *minic.WhileStmt:
			walkExpr(s.Cond)
			if s.Body != nil {
				walkStmt(s.Body)
			}
		case *minic.ForStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			if s.Cond != nil {
				walkExpr(s.Cond)
			}
			if s.Post != nil {
				walkExpr(s.Post)
			}
			if s.Body != nil {
				walkStmt(s.Body)
			}
		case *minic.ReturnStmt:
			if s.X != nil {
				walkExpr(s.X)
			}
		}
	}
	if s != nil {
		walkStmt(s)
	}
}

// matchCountedLoop recognizes `for (v = LO; v < H; v++)` (also `<=` and
// `v += 1`) with a body that cannot exit early or disturb v, H, or any
// scalar through an unchecked store.
func (c *compiler) matchCountedLoop(s *minic.ForStmt) (countedLoop, bool) {
	var cl countedLoop
	switch init := s.Init.(type) {
	case *minic.DeclStmt:
		if len(init.Decls) != 1 {
			return cl, false
		}
		d := init.Decls[0]
		if d.Type != minic.Int || d.Init == nil {
			return cl, false
		}
		v, ok := constEval(d.Init)
		if !ok {
			return cl, false
		}
		cl.v, cl.lo = d, v
	case *minic.ExprStmt:
		a, ok := init.X.(*minic.Assign)
		if !ok || a.Op != "=" {
			return cl, false
		}
		vr, ok := a.LHS.(*minic.VarRef)
		if !ok || vr.Decl == nil || vr.Decl.Type != minic.Int {
			return cl, false
		}
		v, ok := constEval(a.RHS)
		if !ok {
			return cl, false
		}
		cl.v, cl.lo = vr.Decl, v
	default:
		return cl, false
	}
	if cl.v.Storage == minic.StorageGlobal || c.addrTaken[cl.v] {
		return cl, false
	}
	// Keep the scaled low endpoint well inside 32-bit address arithmetic.
	if cl.lo < -(1<<20) || cl.lo > 1<<20 {
		return cl, false
	}

	cond, ok := s.Cond.(*minic.Binary)
	if !ok || (cond.Op != "<" && cond.Op != "<=") {
		return cl, false
	}
	cl.incl = cond.Op == "<="
	x, ok := cond.X.(*minic.VarRef)
	if !ok || x.Decl != cl.v {
		return cl, false
	}
	if hv, ok := constEval(cond.Y); ok {
		cl.hiConst = hv
	} else if yr, ok := cond.Y.(*minic.VarRef); ok && yr.Decl != nil &&
		yr.Decl.Type == minic.Int && yr.Decl != cl.v &&
		yr.Decl.Storage != minic.StorageGlobal && !c.addrTaken[yr.Decl] {
		cl.hiVar = yr.Decl
	} else {
		return cl, false
	}

	switch p := s.Post.(type) {
	case *minic.IncDec:
		vr, ok := p.X.(*minic.VarRef)
		if !ok || vr.Decl != cl.v || p.Op != "++" {
			return cl, false
		}
	case *minic.Assign:
		vr, ok := p.LHS.(*minic.VarRef)
		if !ok || vr.Decl != cl.v || p.Op != "+=" {
			return cl, false
		}
		if dv, ok := constEval(p.RHS); !ok || dv != 1 {
			return cl, false
		}
	default:
		return cl, false
	}

	if s.Body == nil || !c.loopBodySafe(s.Body, cl.v, cl.hiVar) {
		return cl, false
	}
	return cl, true
}

// loopBodySafe rejects bodies that can exit the loop early (break,
// continue, return) or disturb the trip count: writes to v or the bound
// variable, and stores whose target the checker cannot confine (pointer
// or computed stores; direct array stores are bound-checked inside loops
// and cannot reach a scalar slot).
func (c *compiler) loopBodySafe(s minic.Stmt, v, hiVar *minic.VarDecl) bool {
	switch s := s.(type) {
	case *minic.BlockStmt:
		for _, sub := range s.Stmts {
			if !c.loopBodySafe(sub, v, hiVar) {
				return false
			}
		}
		return true
	case *minic.DeclStmt:
		for _, d := range s.Decls {
			if d.Init != nil && !c.hoistExprSafe(d.Init, v, hiVar) {
				return false
			}
			for _, e := range d.InitList {
				if !c.hoistExprSafe(e, v, hiVar) {
					return false
				}
			}
		}
		return true
	case *minic.ExprStmt:
		return c.hoistExprSafe(s.X, v, hiVar)
	case *minic.IfStmt:
		if !c.hoistExprSafe(s.Cond, v, hiVar) {
			return false
		}
		if s.Then != nil && !c.loopBodySafe(s.Then, v, hiVar) {
			return false
		}
		if s.Else != nil && !c.loopBodySafe(s.Else, v, hiVar) {
			return false
		}
		return true
	case *minic.WhileStmt:
		if !c.hoistExprSafe(s.Cond, v, hiVar) {
			return false
		}
		return s.Body == nil || c.loopBodySafe(s.Body, v, hiVar)
	case *minic.ForStmt:
		if s.Init != nil && !c.loopBodySafe(s.Init, v, hiVar) {
			return false
		}
		if s.Cond != nil && !c.hoistExprSafe(s.Cond, v, hiVar) {
			return false
		}
		if s.Post != nil && !c.hoistExprSafe(s.Post, v, hiVar) {
			return false
		}
		return s.Body == nil || c.loopBodySafe(s.Body, v, hiVar)
	default:
		// break, continue, return, anything unrecognized.
		return false
	}
}

func (c *compiler) hoistExprSafe(e minic.Expr, v, hiVar *minic.VarDecl) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *minic.NumberLit, *minic.StringLit, *minic.VarRef:
		return true
	case *minic.Unary:
		return c.hoistExprSafe(e.X, v, hiVar) // reads only (& / * rvalues)
	case *minic.Cast:
		return c.hoistExprSafe(e.X, v, hiVar)
	case *minic.Binary:
		return c.hoistExprSafe(e.X, v, hiVar) && c.hoistExprSafe(e.Y, v, hiVar)
	case *minic.Index:
		return c.hoistExprSafe(e.Base, v, hiVar) && c.hoistExprSafe(e.Index, v, hiVar)
	case *minic.IncDec:
		vr, ok := e.X.(*minic.VarRef)
		if !ok {
			return false // read-modify-write through memory
		}
		return vr.Decl != v && vr.Decl != hiVar
	case *minic.Call:
		// Builtins cannot write program variables. Other functions can
		// write globals, which only matters for a variable trip count.
		if !minic.IsBuiltin(e.Name) && hiVar != nil {
			return false
		}
		for _, a := range e.Args {
			if !c.hoistExprSafe(a, v, hiVar) {
				return false
			}
		}
		return true
	case *minic.Assign:
		switch lhs := e.LHS.(type) {
		case *minic.VarRef:
			if lhs.Decl == v || lhs.Decl == hiVar {
				return false
			}
			return c.hoistExprSafe(e.RHS, v, hiVar)
		case *minic.Index:
			// A store through a direct array reference is bound-checked
			// inside a loop (software or segment), so it stays inside
			// the array; pointer or computed bases can land anywhere.
			d := refObject(lhs.Base)
			if d == nil || d.Type.Kind != minic.TypeArray {
				return false
			}
			return c.hoistExprSafe(lhs.Index, v, hiVar) && c.hoistExprSafe(e.RHS, v, hiVar)
		default:
			return false
		}
	default:
		return false
	}
}

// enterHoistLoop opens a hoisting candidate when the For statement has
// the counted shape; called after the loop condition lowers (references
// in the condition belong to enclosing candidates). Both the canonical
// hoist and the affine pass consume candidates.
func (c *compiler) enterHoistLoop(s *minic.ForStmt, lp *ir.Loop) *hoistCand {
	if !c.wantHoist && !c.wantAffine {
		return nil
	}
	cl, ok := c.matchCountedLoop(s)
	if !ok {
		return nil
	}
	cand := &hoistCand{cl: cl, loop: lp, s: s, groups: make(map[*minic.VarDecl][]int)}
	c.hoistCands = append(c.hoistCands, cand)
	return cand
}

// leaveHoistLoop closes the candidate and records it for the pass when
// it captured any checks.
func (c *compiler) leaveHoistLoop(cand *hoistCand) {
	if cand == nil {
		return
	}
	c.hoistCands = c.hoistCands[:len(c.hoistCands)-1]
	if len(cand.groups) > 0 && c.curFn != nil {
		c.curFn.hoists = append(c.curFn.hoists, cand)
	}
}

// noteHoistRef, called for every checked declared-object reference,
// records the check when it qualifies: direct array indexed exactly by
// the innermost candidate's induction variable, at conditional depth 0.
func (c *compiler) noteHoistRef(d *minic.VarDecl, idx minic.Expr, idxConst int32, idxReg bool, id int) {
	if !c.wantHoist || len(c.hoistCands) == 0 {
		return
	}
	top := c.hoistCands[len(c.hoistCands)-1]
	if top.depth != 0 {
		return
	}
	if d == nil || d.Type.Kind != minic.TypeArray {
		return
	}
	if !idxReg || idxConst != 0 {
		return
	}
	vr, ok := idx.(*minic.VarRef)
	if !ok || vr.Decl != top.cl.v {
		return
	}
	if _, seen := top.groups[d]; !seen {
		top.order = append(top.order, d)
	}
	top.groups[d] = append(top.groups[d], id)
}

// ---------------------------------------------------------------------
// The transform.

type hoistPass struct{}

func (hoistPass) Name() string { return "hoist" }

func (hoistPass) run(c *compiler, m *ir.Module) error {
	c.stats[StatChecksHoisted] += 0 // the key is present whenever the pass ran
	for _, fs := range c.fns {
		if len(fs.hoists) == 0 {
			continue
		}
		c.hoistFunc(fs)
	}
	return nil
}

func (c *compiler) hoistFunc(fs *fnState) {
	// The preheader emission helpers address the function's frame.
	c.fn = fs.fn
	c.frameOff = fs.frameOff

	// Pre-transform dominators and check head blocks: a check may only
	// hoist if its block dominates the loop latch (it executes on every
	// iteration) — the CFG-level restatement of the depth-0 tracking.
	g := fs.frag.BuildCFG()
	dom := g.Dominators()
	headBlock := make(map[int]*ir.Block)
	for _, blk := range fs.frag.Blocks {
		for i := range blk.Instrs {
			if id := blk.Instrs[i].CheckID; id != 0 && headBlock[id] == nil {
				headBlock[id] = blk
			}
		}
	}
	for _, cand := range fs.hoists {
		c.applyHoist(fs, cand, dom, headBlock)
	}
}

// hoistEndpointsOK rejects groups whose preheader endpoint offsets
// cannot be represented exactly in 32-bit address arithmetic. Both
// endpoints are computed in int64 — scaled index plus the array's base
// (global address or frame displacement) — and hoisting bails out,
// leaving the always-safe per-iteration checks, when either folded
// offset leaves int32. The former int32 multiply could wrap for a
// large lower bound and silently check the wrong address.
func (c *compiler) hoistEndpointsOK(d *minic.VarDecl, cl countedLoop) bool {
	elem := int64(d.Type.Elem.Size())
	base := int64(int32(d.Addr))
	if d.Storage != minic.StorageGlobal {
		base = int64(c.frameOff[d])
	}
	fits := func(off int64) bool {
		v := base + off
		return off >= -(1<<30) && off <= 1<<30 && v >= -(1<<31) && v < 1<<31
	}
	if !fits(int64(cl.lo) * elem) {
		return false
	}
	if cl.hiVar != nil {
		return true // runtime overflow guard covers the high endpoint
	}
	last := int64(cl.hiConst)
	if !cl.incl {
		last--
	}
	return fits(last * elem)
}

func (c *compiler) applyHoist(fs *fnState, cand *hoistCand, dom map[*ir.Block]map[*ir.Block]bool, headBlock map[int]*ir.Block) {
	latchDom := dom[cand.loop.Latch]
	if latchDom == nil {
		return // latch unreachable; leave the loop alone
	}
	cl := cand.cl

	// A constant-bound loop that runs zero times: its body checks are
	// dead code — delete them with no preheader.
	emptyConst := false
	if cl.hiVar == nil {
		last := int64(cl.hiConst)
		if !cl.incl {
			last--
		}
		emptyConst = last < int64(cl.lo)
	}

	type group struct {
		d   *minic.VarDecl
		ids []int
	}
	var groups []group
	for _, d := range cand.order {
		var ids []int
		for _, id := range cand.groups[d] {
			if c.deadChecks[id] {
				continue
			}
			hb := headBlock[id]
			if hb == nil || !latchDom[hb] {
				continue
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			continue
		}
		if !emptyConst && !c.hoistEndpointsOK(d, cl) {
			continue
		}
		groups = append(groups, group{d, ids})
	}
	if len(groups) == 0 {
		return
	}

	removed := make(map[int]bool)
	for _, gr := range groups {
		for _, id := range gr.ids {
			removed[id] = true
		}
	}
	for _, blk := range fs.frag.Blocks {
		kept := blk.Instrs[:0]
		for _, iin := range blk.Instrs {
			if iin.CheckID != 0 && removed[iin.CheckID] {
				continue
			}
			kept = append(kept, iin)
		}
		blk.Instrs = kept
	}
	fs.frag.Compact()
	for id := range removed {
		c.deadChecks[id] = true
	}
	c.stats[StatSWChecks] -= uint64(len(removed))
	c.stats[StatChecksHoisted] += uint64(len(removed))

	if emptyConst {
		return
	}

	// Narrowing audit: Elem.Size() is 1 (char) or 4 (int) — mini-C has
	// no nested aggregates — so the int32 conversion cannot truncate;
	// TestHoistNarrowingAudit pins the assumption.
	elemOf := func(d *minic.VarDecl) int32 { return int32(d.Type.Elem.Size()) }
	blocks := c.b.Detour(func() {
		if cl.hiVar != nil {
			skip := c.lbl("hsk")
			c.b.Op(vm.MOV, vm.R(vm.EAX), vm.M(c.slotRef(cl.hiVar, 0)))
			c.b.Op(vm.CMP, vm.R(vm.EAX), vm.I(cl.lo))
			if cl.incl {
				c.b.Jump(vm.JL, skip) // v <= H runs zero times iff H < lo
			} else {
				c.b.Jump(vm.JLE, skip) // v < H runs zero times iff H <= lo
			}
			// Overflow guard: a final index at or past 2^30/elem is
			// always out of bounds, and the loop's unconditional
			// reference was going to reach the (much smaller) true bound
			// and trap — so trap now rather than let the scaled address
			// computation wrap.
			// Narrowing audit: 2^30/elem with elem in {1,4} stays well
			// inside int32, and H itself is compared as a signed word,
			// so neither the division nor the compare can wrap.
			guard := int32(1 << 30)
			for _, gr := range groups {
				if g := (int32(1) << 30) / elemOf(gr.d); g < guard {
					guard = g
				}
			}
			c.b.Op(vm.CMP, vm.R(vm.EAX), vm.I(guard))
			c.b.Jump(vm.JG, "__bounds_trap")
			for _, gr := range groups {
				d := gr.d
				elem := elemOf(d)
				// Highest referenced address: base + (H-1)*elem
				// (base + H*elem for "<="). EAX holds H throughout: the
				// check sequences clobber only ESI/EDI.
				adj := -elem
				if cl.incl {
					adj = 0
				}
				c.b.Op(vm.MOV, vm.R(vm.EBX), vm.R(vm.EAX))
				c.scaleReg(vm.EBX, elem)
				if d.Storage == minic.StorageGlobal {
					c.b.Op(vm.ADD, vm.R(vm.EBX), vm.I(int32(d.Addr)+adj))
				} else {
					c.b.Op(vm.LEA, vm.R(vm.ECX), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d] + adj}))
					c.b.Op(vm.ADD, vm.R(vm.EBX), vm.R(vm.ECX))
				}
				c.emitCheckForDecl(vm.EBX, d)
				// Lowest referenced address: base + lo*elem, folded in
				// int64 (hoistEndpointsOK proved it fits int32).
				loOff := int64(cl.lo) * int64(elem)
				if d.Storage == minic.StorageGlobal {
					c.b.Op(vm.MOV, vm.R(vm.EBX), vm.I(int32(int64(int32(d.Addr))+loOff)))
				} else {
					c.b.Op(vm.LEA, vm.R(vm.EBX), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: int32(int64(c.frameOff[d]) + loOff)}))
				}
				c.emitCheckForDecl(vm.EBX, d)
			}
			c.b.Label(skip)
		} else {
			last := cl.hiConst
			if !cl.incl {
				last--
			}
			for _, gr := range groups {
				d := gr.d
				// Both endpoints fold base + scaled index in int64;
				// hoistEndpointsOK proved each sum fits int32, so no
				// 32-bit intermediate can wrap.
				elem := int64(elemOf(d))
				hiOff := int64(last) * elem
				loOff := int64(cl.lo) * elem
				if d.Storage == minic.StorageGlobal {
					base := int64(int32(d.Addr))
					c.b.Op(vm.MOV, vm.R(vm.EBX), vm.I(int32(base+hiOff)))
					c.emitCheckForDecl(vm.EBX, d)
					c.b.Op(vm.MOV, vm.R(vm.EBX), vm.I(int32(base+loOff)))
					c.emitCheckForDecl(vm.EBX, d)
				} else {
					base := int64(c.frameOff[d])
					c.b.Op(vm.LEA, vm.R(vm.EBX), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: int32(base + hiOff)}))
					c.emitCheckForDecl(vm.EBX, d)
					c.b.Op(vm.LEA, vm.R(vm.EBX), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: int32(base + loOff)}))
					c.emitCheckForDecl(vm.EBX, d)
				}
			}
		}
	})
	fs.frag.InsertBefore(cand.loop.Header, blocks)
	// The preheader executes inside every enclosing loop of the
	// candidate (but not inside the candidate itself).
	for p := cand.loop.Parent; p != nil; p = p.Parent {
		p.Blocks = append(p.Blocks, blocks...)
	}
}
