package codegen

import (
	"fmt"
	"strings"

	"cash/internal/vm"
)

// Named-strategy registry. Checking strategies used to be a closed
// three-value mode enum; they are now registered by name so callers
// (internal/core, the CLIs, the bench matrix) can enumerate and select
// them without a mode switch. Each entry binds a public name to the
// vm.Mode its programs run under and the lowering implementation.

// StrategyKind classifies how a checking strategy enforces bounds.
type StrategyKind string

// Strategy kinds.
const (
	// KindLowering strategies work purely by code lowering: either no
	// checks at all or software compare-and-branch sequences.
	KindLowering StrategyKind = "lowering"
	// KindHardware strategies rely on modeled checking hardware:
	// segment-limit checks or MPX bounds registers and tables.
	KindHardware StrategyKind = "hardware-modeled"
)

// StrategyInfo describes one registered checking strategy.
type StrategyInfo struct {
	// Name is the public strategy name ("gcc", "bcc", "cash", "mpx").
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Kind tells whether checking happens in lowered code or in modeled
	// hardware.
	Kind StrategyKind
	// Mode is the vm execution mode programs built with this strategy
	// run under.
	Mode vm.Mode
}

type registeredStrategy struct {
	info StrategyInfo
	impl strategy
}

// stratRegistry holds the registered strategies in registration order.
var stratRegistry []registeredStrategy

// strategies maps each vm mode to its lowering strategy, maintained by
// registerStrategy. Absence makes a mode invalid at Config validation.
var strategies = map[vm.Mode]strategy{}

// registerStrategy adds a strategy to the registry. Registering a
// duplicate name is a programming error and panics.
func registerStrategy(info StrategyInfo, impl strategy) {
	for _, r := range stratRegistry {
		if r.info.Name == info.Name {
			panic(fmt.Sprintf("codegen: duplicate strategy registration %q", info.Name))
		}
	}
	stratRegistry = append(stratRegistry, registeredStrategy{info: info, impl: impl})
	strategies[info.Mode] = impl
}

func init() {
	registerStrategy(StrategyInfo{
		Name:        "gcc",
		Description: "unchecked baseline: thin pointers, no bound checks",
		Kind:        KindLowering,
		Mode:        vm.ModeGCC,
	}, gccStrategy{})
	registerStrategy(StrategyInfo{
		Name:        "bcc",
		Description: "software bound checking: 3-word fat pointers, 6-instruction check per reference",
		Kind:        KindLowering,
		Mode:        vm.ModeBCC,
	}, bccStrategy{})
	registerStrategy(StrategyInfo{
		Name:        "cash",
		Description: "segmentation-hardware checking: 2-word pointers, one x86 segment per array",
		Kind:        KindHardware,
		Mode:        vm.ModeCash,
	}, cashStrategy{})
	registerStrategy(StrategyInfo{
		Name:        "mpx",
		Description: "MPX-style checking: thin pointers, bndcl/bndcu checks, shadow bounds table",
		Kind:        KindHardware,
		Mode:        vm.ModeMPX,
	}, mpxStrategy{})
}

// Strategies returns every registered checking strategy in registration
// order.
func Strategies() []StrategyInfo {
	out := make([]StrategyInfo, len(stratRegistry))
	for i, r := range stratRegistry {
		out[i] = r.info
	}
	return out
}

// StrategyNames returns the registered strategy names in registration
// order.
func StrategyNames() []string {
	names := make([]string, len(stratRegistry))
	for i, r := range stratRegistry {
		names[i] = r.info.Name
	}
	return names
}

// StrategyByName looks a strategy up by its registered name.
func StrategyByName(name string) (StrategyInfo, bool) {
	for _, r := range stratRegistry {
		if r.info.Name == name {
			return r.info, true
		}
	}
	return StrategyInfo{}, false
}

// UnknownStrategyError builds the error for an unregistered strategy
// name, listing the valid names.
func UnknownStrategyError(name string) error {
	return fmt.Errorf("codegen: unknown strategy %q (valid: %s)", name, strings.Join(StrategyNames(), ", "))
}
