package workload

import "fmt"

// Range kernels: four synthetic programs whose checked references are
// computed (affine) indices rather than bare induction variables. They
// exercise the shapes the "affine" symbolic-range pass must recognise —
// triangular nests, runtime-variable row strides, constant strides — and
// one deliberate control it must leave alone. They are not part of the
// paper's tables and are kept out of All(); benchmarks and tests pull
// them in through RangeKernels().

// RangeKernels returns the four range-analysis kernels at their default
// sizes.
func RangeKernels() []Workload {
	return []Workload{
		TriSolve(48),
		Banded(64, 8),
		StridedConv(96),
		Gather(256),
	}
}

// TriSolve is forward substitution on a unit lower-triangular system
// stored as a flattened n x n matrix: the inner loop is bounded by the
// outer induction variable, so a rectangular chain only forms after the
// outer level is demoted to an invariant.
func TriSolve(n int) Workload {
	src := fmt.Sprintf(`
// Unit lower-triangular forward substitution, flattened storage.
int l[%[1]d]; // n*n
int b[%[2]d];
int x[%[2]d];
void main() {
	int n = %[2]d;
	for (int i = 0; i < n; i++) {
		b[i] = (i * 37) %% 1000;
		for (int j = 0; j < n; j++) {
			if (j < i) l[i*n+j] = (i + j * 3) %% 7 + 1;
			else l[i*n+j] = 0;
		}
	}
	for (int i = 0; i < n; i++) {
		int s = 0;
		for (int j = 0; j < i; j++) {
			s += l[i*n+j] * x[j];
		}
		x[i] = (b[i] - s) %% 9973;
	}
	int sum = 0;
	for (int i = 0; i < n; i++) sum += x[i];
	printi(sum);
}
`, n*n, n)
	return Workload{
		Name:        fmt.Sprintf("trisolve%d", n),
		Paper:       "(range kernel)",
		Description: fmt.Sprintf("%dx%d unit lower-triangular solve, flattened rows", n, n),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// Banded multiplies a band matrix (n rows of w diagonals, flattened) by
// a vector: the row stride w is a runtime variable, so the affine pass
// must justify a guard on w through the inner loop it also bounds.
func Banded(n, w int) Workload {
	src := fmt.Sprintf(`
// Band matrix times vector: row stride is a runtime variable.
int a[%[1]d]; // n*w
int x[%[2]d]; // n+w
int y[%[3]d];
void main() {
	int n = %[3]d;
	int w = %[4]d;
	int m = n + w;
	for (int i = 0; i < n; i++) {
		y[i] = 0;
		for (int j = 0; j < w; j++) {
			a[i*w+j] = (i * 5 + j * 3) %% 11 + 1;
		}
	}
	for (int i = 0; i < m; i++) x[i] = (i * 7) %% 13 + 1;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < w; j++) {
			y[i] += a[i*w+j] * x[i+j];
		}
	}
	int sum = 0;
	for (int i = 0; i < n; i++) sum += y[i] %% 9973;
	printi(sum);
}
`, n*w, n+w, n, w)
	return Workload{
		Name:        fmt.Sprintf("banded%dx%d", n, w),
		Paper:       "(range kernel)",
		Description: fmt.Sprintf("%d-row band matrix-vector product, %d diagonals", n, w),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// StridedConv is a stride-4 correlation with 4 taps: a constant-stride
// computed index with a constant-bound inner loop, the pure-constant
// corner of the affine domain.
func StridedConv(n int) Workload {
	src := fmt.Sprintf(`
// Stride-4 correlation with a 4-tap kernel.
int x[%[1]d]; // 4*n+4
int w[4];
int y[%[2]d];
void main() {
	int n = %[2]d;
	int m = 4 * n + 4;
	for (int i = 0; i < m; i++) x[i] = (i * 3) %% 7 + 1;
	for (int k = 0; k < 4; k++) w[k] = k + 1;
	for (int i = 0; i < n; i++) {
		int s = 0;
		for (int k = 0; k < 4; k++) {
			s += x[i*4+k] * w[k];
		}
		y[i] = s %% 9973;
	}
	int sum = 0;
	for (int i = 0; i < n; i++) sum += y[i];
	printi(sum);
}
`, 4*n+4, n)
	return Workload{
		Name:        fmt.Sprintf("sconv%d", n),
		Paper:       "(range kernel)",
		Description: fmt.Sprintf("stride-4 4-tap correlation over %d outputs", n),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// Gather sums through a permutation table: a[idx[i]] is a data-dependent
// index no static range analysis can bound, so the affine pass must
// leave it checked per iteration (the idx[i] reads themselves are plain
// induction-variable references and belong to the hoist pass).
func Gather(n int) Workload {
	src := fmt.Sprintf(`
// Indirect gather through a permutation table: the control kernel.
int a[%[1]d];
int idx[%[1]d];
void main() {
	int n = %[1]d;
	for (int i = 0; i < n; i++) a[i] = (i * 13) %% 31 + 1;
	for (int i = 0; i < n; i++) idx[i] = (i * 631) %% n;
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += a[idx[i]];
	}
	printi(s);
}
`, n)
	return Workload{
		Name:        fmt.Sprintf("gather%d", n),
		Paper:       "(range kernel)",
		Description: fmt.Sprintf("indirect sum through a %d-entry permutation", n),
		Category:    CategoryKernel,
		Source:      src,
	}
}
