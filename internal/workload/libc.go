package workload

// LibCorpus is a representative slice of the C library compiled into
// every statically linked binary. The paper's binary-size tables (2, 6
// and the Table 8 space column) compare statically linked executables
// whose GLIBC was recompiled with each bound checker — most of the size
// difference comes from the library, not the application. We reproduce
// that by compiling this corpus (string/memory/conversion/sorting
// routines, the hot part of libc for the tested applications) under each
// mode and adding its text to every binary.
//
// The corpus is valid mini-C with a main that exercises every routine, so
// the correctness test suite can verify it runs identically under all
// three compilers.
func LibCorpus() Workload {
	return Workload{
		Name:        "libc",
		Paper:       "GLIBC (recompiled)",
		Description: "string/memory/conversion library corpus for the static-link size model",
		Category:    CategoryMacro,
		Source: `
// libc corpus: the routines the paper's applications link statically.

int c_strlen(char *s) {
	int n = 0;
	while (s[n] != 0) n++;
	return n;
}

void c_strcpy(char *dst, char *src) {
	int i = 0;
	while (src[i] != 0) {
		dst[i] = src[i];
		i++;
	}
	dst[i] = 0;
}

void c_strncpy(char *dst, char *src, int n) {
	int i = 0;
	while (i < n && src[i] != 0) {
		dst[i] = src[i];
		i++;
	}
	while (i < n) {
		dst[i] = 0;
		i++;
	}
}

int c_strcmp(char *a, char *b) {
	int i = 0;
	while (a[i] != 0 && a[i] == b[i]) i++;
	return a[i] - b[i];
}

int c_strchr(char *s, int c) {
	for (int i = 0; s[i] != 0; i++) {
		if (s[i] == c) return i;
	}
	return -1;
}

void c_strcat(char *dst, char *src) {
	int d = c_strlen(dst);
	int i = 0;
	while (src[i] != 0) {
		dst[d + i] = src[i];
		i++;
	}
	dst[d + i] = 0;
}

void c_memcpy(char *dst, char *src, int n) {
	for (int i = 0; i < n; i++) dst[i] = src[i];
}

void c_memset(char *dst, int v, int n) {
	for (int i = 0; i < n; i++) dst[i] = v;
}

int c_memcmp(char *a, char *b, int n) {
	for (int i = 0; i < n; i++) {
		if (a[i] != b[i]) return a[i] - b[i];
	}
	return 0;
}

int c_atoi(char *s) {
	int i = 0;
	int neg = 0;
	int v = 0;
	while (s[i] == ' ') i++;
	if (s[i] == '-') { neg = 1; i++; }
	while (s[i] >= '0' && s[i] <= '9') {
		v = v * 10 + (s[i] - '0');
		i++;
	}
	if (neg) return -v;
	return v;
}

int c_itoa(int v, char *out) {
	char tmp[16];
	int n = 0;
	int neg = 0;
	if (v < 0) { neg = 1; v = -v; }
	if (v == 0) { tmp[0] = '0'; n = 1; }
	while (v > 0) {
		tmp[n] = '0' + v % 10;
		v = v / 10;
		n++;
	}
	int o = 0;
	if (neg) { out[0] = '-'; o = 1; }
	for (int i = n - 1; i >= 0; i--) {
		out[o] = tmp[i];
		o++;
	}
	out[o] = 0;
	return o;
}

int c_toupper(int c) {
	if (c >= 'a' && c <= 'z') return c - 32;
	return c;
}

int c_tolower(int c) {
	if (c >= 'A' && c <= 'Z') return c + 32;
	return c;
}

// c_qsort sorts an int array in place (insertion sort, as the small-n
// fallback of the real qsort).
void c_qsort(int *a, int n) {
	for (int i = 1; i < n; i++) {
		int v = a[i];
		int j = i - 1;
		while (j >= 0 && a[j] > v) {
			a[j+1] = a[j];
			j--;
		}
		a[j+1] = v;
	}
}

// c_bsearch finds v in a sorted int array, or returns -1.
int c_bsearch(int *a, int n, int v) {
	int lo = 0;
	int hi = n - 1;
	while (lo <= hi) {
		int mid = (lo + hi) / 2;
		if (a[mid] == v) return mid;
		if (a[mid] < v) lo = mid + 1;
		else hi = mid - 1;
	}
	return -1;
}

// c_snprintf_d renders "%s=%d\n" style records, the hot formatting path.
int c_format(char *out, char *key, int v) {
	int o = 0;
	for (int i = 0; key[i] != 0; i++) {
		out[o] = key[i];
		o++;
	}
	out[o] = '=';
	o++;
	char num[16];
	int n = c_itoa(v, num);
	for (int i = 0; i < n; i++) {
		out[o] = num[i];
		o++;
	}
	out[o] = '\n';
	o++;
	out[o] = 0;
	return o;
}

// c_hash is the djb2 string hash used by name-service lookup paths.
int c_hash(char *s) {
	int h = 5381;
	for (int i = 0; s[i] != 0; i++) {
		h = h * 33 + s[i];
	}
	return h;
}

char g_src[64] = "the quick brown fox jumps over the lazy dog";
char g_dst[128];
char g_num[32];
int g_table[32];

void main() {
	int check = 0;
	check += c_strlen(g_src);
	c_strcpy(g_dst, g_src);
	c_strcat(g_dst, " again");
	check += c_strlen(g_dst);
	c_strncpy(g_num, g_src, 10);
	check += c_strcmp(g_dst, g_src);
	check += c_strchr(g_src, 'q');
	c_memset(g_num, 0, 32);
	c_memcpy(g_num, g_src, 16);
	check += c_memcmp(g_num, g_src, 16);
	check += c_atoi(" -4821");
	check += c_format(g_dst, "count", 12345);
	check += c_hash(g_src);
	check += c_toupper('g') + c_tolower('G');
	for (int i = 0; i < 32; i++) g_table[i] = (i * 37) % 64;
	c_qsort(g_table, 32);
	check += c_bsearch(g_table, 32, g_table[20]);
	for (int i = 0; i < 32; i++) check += g_table[i];
	printi(check & 0xffffff);
}
`,
	}
}
