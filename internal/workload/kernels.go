package workload

import (
	"fmt"
	"math"
	"strings"
)

// The six Table 1 numerical kernels. Each is parameterised by input size
// so the Table 3 scaling experiment can regenerate the 64..512 sweep (we
// sweep the same shape at simulator-friendly sizes).

// MatMul is the Matrix Multiplication kernel: C = A*B on n x n integer
// matrices (paper: 128x128).
func MatMul(n int) Workload {
	src := fmt.Sprintf(`
// Matrix multiplication kernel (Table 1 "Matrix Multi.").
int a[%[1]d]; // n*n
int b[%[1]d];
int c[%[1]d];
void main() {
	int n = %[2]d;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			a[i*n+j] = (i + j) %% 17 + 1;
			b[i*n+j] = (i * 3 + j * 7) %% 13 + 1;
		}
	}
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			int s = 0;
			for (int k = 0; k < n; k++) {
				s += a[i*n+k] * b[k*n+j];
			}
			c[i*n+j] = s;
		}
	}
	int sum = 0;
	for (int i = 0; i < n*n; i++) sum += c[i] %% 9973;
	printi(sum);
}
`, n*n, n)
	return Workload{
		Name:        fmt.Sprintf("matmul%d", n),
		Paper:       "Matrix Multi.",
		Description: fmt.Sprintf("%dx%d integer matrix multiplication", n, n),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// Gaussian is the Gaussian Elimination kernel on an n x (n+1) augmented
// matrix in 8.8 fixed point (paper: 128x128, floating point).
func Gaussian(n int) Workload {
	src := fmt.Sprintf(`
// Gaussian elimination kernel (Table 1 "Gaus. Elim."), 8.8 fixed point.
int m[%[1]d]; // n*(n+1) augmented matrix
int x[%[2]d]; // solution vector
void main() {
	int n = %[2]d;
	int w = n + 1;
	// Diagonally dominant system so no pivoting is needed.
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < w; j++) {
			if (i == j) m[i*w+j] = (n * 8) << 8;
			else m[i*w+j] = (((i * 7 + j * 3) %% 9) - 4) << 8;
		}
	}
	// Forward elimination.
	for (int k = 0; k < n; k++) {
		for (int i = k + 1; i < n; i++) {
			int f = (m[i*w+k] << 8) / m[k*w+k];
			for (int j = k; j < w; j++) {
				m[i*w+j] -= (f * m[k*w+j]) >> 8;
			}
		}
	}
	// Back substitution.
	for (int i = n - 1; i >= 0; i--) {
		int s = m[i*w+n];
		for (int j = i + 1; j < n; j++) {
			s -= (m[i*w+j] * x[j]) >> 8;
		}
		x[i] = (s << 8) / m[i*w+i];
	}
	int sum = 0;
	for (int i = 0; i < n; i++) sum += x[i];
	printi(sum);
}
`, n*(n+1), n)
	return Workload{
		Name:        fmt.Sprintf("gauss%d", n),
		Paper:       "Gaus. Elim.",
		Description: fmt.Sprintf("%dx%d fixed-point Gaussian elimination", n, n),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// sineTable renders a quarter-precision sine table in 8.8 fixed point as
// a mini-C initialiser; the front end has no floating point, so the
// constants are computed here (exactly what a C programmer would bake
// into a fixed-point FFT).
func sineTable(n int) string {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("%d", int(math.Round(256*math.Sin(2*math.Pi*float64(i)/float64(2*n)))))
	}
	return strings.Join(vals, ", ")
}

// FFT2D is the 2D FFT kernel: n x n, row FFTs then column FFTs, radix-2
// iterative, 8.8 fixed point (paper: 64x64). n must be a power of two.
func FFT2D(n int) Workload {
	logn := 0
	for 1<<logn < n {
		logn++
	}
	src := fmt.Sprintf(`
// 2D FFT kernel (Table 1 "2D FFT"), radix-2 iterative, 8.8 fixed point.
int re[%[1]d]; // n*n real parts
int im[%[1]d]; // n*n imaginary parts
int sine[%[2]d] = {%[3]s}; // sin(2*pi*i/(2n)) in 8.8
int rev[%[4]d]; // bit-reversal permutation

// fft1d transforms one length-n line with stride 1 starting at offset.
void fft1d(int *rp, int *ip, int n) {
	// Bit-reversal permutation.
	for (int i = 0; i < n; i++) {
		int j = rev[i];
		if (j > i) {
			int t = rp[i]; rp[i] = rp[j]; rp[j] = t;
			t = ip[i]; ip[i] = ip[j]; ip[j] = t;
		}
	}
	for (int len = 2; len <= n; len = len << 1) {
		int half = len >> 1;
		int step = n / len;
		for (int base = 0; base < n; base += len) {
			for (int k = 0; k < half; k++) {
				int widx = k * step;
				int wr = sine[widx + (%[4]d >> 1)]; // cos via quarter shift
				int wi = -sine[widx];
				int ur = rp[base+k];
				int ui = ip[base+k];
				int vr = (rp[base+k+half] * wr - ip[base+k+half] * wi) >> 8;
				int vi = (rp[base+k+half] * wi + ip[base+k+half] * wr) >> 8;
				rp[base+k] = ur + vr;
				ip[base+k] = ui + vi;
				rp[base+k+half] = ur - vr;
				ip[base+k+half] = ui - vi;
			}
		}
	}
}

void main() {
	int n = %[4]d;
	int logn = %[5]d;
	// Bit-reversal table.
	for (int i = 0; i < n; i++) {
		int r = 0;
		int v = i;
		for (int bit = 0; bit < logn; bit++) {
			r = (r << 1) | (v & 1);
			v = v >> 1;
		}
		rev[i] = r;
	}
	// Synthetic image.
	for (int i = 0; i < n*n; i++) {
		re[i] = ((i * 1103 + 12345) >> 4) %% 256;
		im[i] = 0;
	}
	// Row FFTs.
	for (int r = 0; r < n; r++) {
		fft1d(&re[r*n], &im[r*n], n);
	}
	// Column FFTs via transpose, FFT, transpose back.
	for (int i = 0; i < n; i++) {
		for (int j = i + 1; j < n; j++) {
			int t = re[i*n+j]; re[i*n+j] = re[j*n+i]; re[j*n+i] = t;
			t = im[i*n+j]; im[i*n+j] = im[j*n+i]; im[j*n+i] = t;
		}
	}
	for (int r = 0; r < n; r++) {
		fft1d(&re[r*n], &im[r*n], n);
	}
	int sum = 0;
	for (int i = 0; i < n*n; i++) sum += (re[i] + im[i]) %% 997;
	printi(sum);
}
`, n*n, n, sineTable(n), n, logn)
	return Workload{
		Name:        fmt.Sprintf("fft%d", n),
		Paper:       "2D FFT",
		Description: fmt.Sprintf("%dx%d fixed-point 2D FFT", n, n),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// EdgeDetect is the Image Edge Detection kernel: Sobel operator over a
// w x h synthetic image (paper: 1024x768).
func EdgeDetect(w, h int) Workload {
	src := fmt.Sprintf(`
// Sobel edge detection kernel (Table 1 "Edge Detect").
int img[%[1]d];  // w*h input
int gx[%[1]d];   // horizontal gradient
int gy[%[1]d];   // vertical gradient
int edge[%[1]d]; // gradient magnitude (L1)
void main() {
	int w = %[2]d;
	int h = %[3]d;
	int seed = 42;
	for (int i = 0; i < w*h; i++) {
		seed = seed * 1103515245 + 12345;
		img[i] = (seed >> 16) & 0xff;
	}
	for (int y = 1; y < h - 1; y++) {
		for (int x = 1; x < w - 1; x++) {
			int p = y * w + x;
			gx[p] = img[p-w+1] + 2*img[p+1] + img[p+w+1]
			      - img[p-w-1] - 2*img[p-1] - img[p+w-1];
			gy[p] = img[p+w-1] + 2*img[p+w] + img[p+w+1]
			      - img[p-w-1] - 2*img[p-w] - img[p-w+1];
		}
	}
	for (int y = 1; y < h - 1; y++) {
		for (int x = 1; x < w - 1; x++) {
			int p = y * w + x;
			int ax = gx[p]; if (ax < 0) ax = -ax;
			int ay = gy[p]; if (ay < 0) ay = -ay;
			edge[p] = ax + ay;
		}
	}
	int sum = 0;
	for (int i = 0; i < w*h; i++) sum += edge[i] %% 251;
	printi(sum);
}
`, w*h, w, h)
	return Workload{
		Name:        fmt.Sprintf("edge%dx%d", w, h),
		Paper:       "Edge Detect",
		Description: fmt.Sprintf("%dx%d Sobel edge detection", w, h),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// VolumeRender is the Volume Rendering kernel: orthographic ray casting
// with front-to-back alpha compositing through a g^3 density volume onto
// an r x r image plane with s steps per ray (paper: 128^3 onto 256^2).
func VolumeRender(g, r, s int) Workload {
	src := fmt.Sprintf(`
// Ray-casting volume renderer kernel (Table 1 "Vol. Render."), 8.8 fixed.
int vol[%[1]d];   // g^3 density volume
int image[%[2]d]; // r*r output plane
int opac[64];     // opacity transfer function, 8.8
int emis[64];     // emission transfer function, 8.8
void main() {
	int g = %[3]d;
	int r = %[4]d;
	int steps = %[5]d;
	int gg = g * g;
	int seed = 7;
	for (int i = 0; i < g*g*g; i++) {
		seed = seed * 1103515245 + 12345;
		vol[i] = (seed >> 16) & 0x3f; // low densities
	}
	for (int d = 0; d < 64; d++) {
		opac[d] = d * 2;           // denser -> more opaque
		emis[d] = (d * d) >> 4;    // denser -> brighter
	}
	for (int py = 0; py < r; py++) {
		for (int px = 0; px < r; px++) {
			// Ray enters at (x,y,0) and marches in +z: the sample index
			// advances by one z-slab (g*g voxels) per step.
			int x = (px * g) / r;
			int y = (py * g) / r;
			int idx = y * g + x;
			int acc = 0;        // accumulated intensity, 8.8
			int trans = 256;    // transparency, 8.8
			int zlim = steps;
			if (zlim > g) zlim = g;
			for (int k = 0; k < zlim; k++) {
				int d = vol[idx];
				idx += gg;
				acc += (trans * emis[d]) >> 8;
				trans -= (trans * opac[d]) >> 8;
				if (trans < 4) break;
			}
			image[py*r+px] = acc;
		}
	}
	int sum = 0;
	for (int i = 0; i < r*r; i++) sum += image[i] %% 769;
	printi(sum);
}
`, g*g*g, r*r, g, r, s)
	return Workload{
		Name:        fmt.Sprintf("volren%d", g),
		Paper:       "Vol. Render.",
		Description: fmt.Sprintf("%d^3 volume ray casting onto %dx%d", g, r, r),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// SVD is the SVDPACKC-style kernel: power iteration on A^T A to estimate
// the dominant singular triplet of an m x n matrix, the core loop
// structure of the Lanczos methods SVDPACKC implements (paper: 374x82).
// Fixed point 8.8.
func SVD(m, n, iters int) Workload {
	src := fmt.Sprintf(`
// Dominant-singular-triplet kernel in the style of SVDPACKC (Table 1
// "SVDPACKC"): power iteration y = A x, x = A^T y with rescaling.
int a[%[1]d]; // m*n matrix
int x[%[2]d]; // right singular vector estimate
int y[%[3]d]; // left singular vector estimate
void main() {
	int m = %[3]d;
	int n = %[2]d;
	int seed = 99;
	for (int i = 0; i < m*n; i++) {
		seed = seed * 1103515245 + 12345;
		a[i] = ((seed >> 16) %% 17) - 8;
	}
	for (int j = 0; j < n; j++) x[j] = 256;
	int sigma = 0;
	for (int it = 0; it < %[4]d; it++) {
		// y = A x
		for (int i = 0; i < m; i++) {
			int s = 0;
			for (int j = 0; j < n; j++) s += a[i*n+j] * x[j];
			y[i] = s >> 4;
		}
		// x = A^T y
		for (int j = 0; j < n; j++) {
			int s = 0;
			for (int i = 0; i < m; i++) s += a[i*n+j] * y[i];
			x[j] = s >> 4;
		}
		// Rescale x to keep the iteration in range; track the norm as
		// the singular value estimate.
		int norm = 0;
		for (int j = 0; j < n; j++) {
			int v = x[j]; if (v < 0) v = -v;
			if (v > norm) norm = v;
		}
		sigma = norm;
		if (norm > 0) {
			for (int j = 0; j < n; j++) x[j] = (x[j] << 8) / norm;
		}
	}
	int sum = sigma %% 100000;
	for (int j = 0; j < n; j++) sum += x[j] %% 641;
	printi(sum);
}
`, m*n, n, m, iters)
	return Workload{
		Name:        fmt.Sprintf("svd%dx%d", m, n),
		Paper:       "SVDPACKC",
		Description: fmt.Sprintf("%dx%d dominant singular triplet by power iteration", m, n),
		Category:    CategoryKernel,
		Source:      src,
	}
}
