// Package workload contains the benchmark programs of the Cash paper,
// re-authored in mini-C for the simulated machine:
//
//   - the six numerical micro-benchmark kernels of Table 1 (SVD, volume
//     rendering, 2D FFT, Gaussian elimination, matrix multiplication,
//     edge detection),
//   - the six macro applications of Table 4/5 (Toast, Cjpeg, Quat,
//     RayLab, Speex, Gif2png) as computational skeletons with the same
//     array/pointer/loop structure,
//   - the six network applications of Table 7/8 (Qpopper, Apache,
//     Sendmail, Wu-ftpd, Pure-ftpd, Bind) as request-handler programs.
//
// Floating-point kernels are ported to 16.16 or 8.8 fixed point: the
// checked array reference structure — which is what the paper measures —
// is unchanged (documented substitution, DESIGN.md). Input data is
// synthesised deterministically with an LCG so every mode computes the
// identical checksum, which the test suite verifies.
package workload

// Category classifies a workload by the paper section it reproduces.
type Category int

// Workload categories.
const (
	// CategoryKernel is a Table 1 numerical kernel.
	CategoryKernel Category = iota + 1
	// CategoryMacro is a Table 4/5 macro application.
	CategoryMacro
	// CategoryNetwork is a Table 7/8 network application handler.
	CategoryNetwork
)

func (c Category) String() string {
	switch c {
	case CategoryKernel:
		return "kernel"
	case CategoryMacro:
		return "macro"
	case CategoryNetwork:
		return "network"
	default:
		return "unknown"
	}
}

// Workload is one benchmark program.
type Workload struct {
	// Name is the short identifier used by tools and benchmarks.
	Name string
	// Paper is the program name as it appears in the paper's tables.
	Paper string
	// Description summarises what the program computes.
	Description string
	Category    Category
	// Source is the mini-C program text.
	Source string
}

// Kernels returns the six Table 1 micro-benchmark kernels at their
// default sizes (scaled down from the paper's inputs so a simulated run
// stays in the millions-of-instructions range; relative overheads are
// size-independent once per-array set-up amortises, which Table 3
// demonstrates).
func Kernels() []Workload {
	return []Workload{
		SVD(96, 64, 20),
		VolumeRender(24, 32, 24),
		FFT2D(32),
		Gaussian(40),
		MatMul(40),
		EdgeDetect(160, 120),
	}
}

// Macros returns the six macro applications of Tables 4-6.
func Macros() []Workload {
	return []Workload{Toast(), Cjpeg(), Quat(), RayLab(), Speex(), Gif2png()}
}

// NetworkApps returns the six network applications of Tables 7-8.
func NetworkApps() []Workload {
	return []Workload{Qpopper(), Apache(), Sendmail(), WuFTPD(), PureFTPD(), Bind()}
}

// ByName finds a workload across all categories, including the range
// and stencil kernels (which are not part of All()).
func ByName(name string) (Workload, bool) {
	extras := append(RangeKernels(), StencilKernels()...)
	for _, w := range append(All(), extras...) {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// All returns every workload in the suite, including the libc corpus
// used by the static-link size model.
func All() []Workload {
	var out []Workload
	out = append(out, Kernels()...)
	out = append(out, Macros()...)
	out = append(out, NetworkApps()...)
	out = append(out, LibCorpus())
	return out
}
