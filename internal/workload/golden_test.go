package workload

import (
	"testing"

	"cash/internal/core"
)

// Golden checksums for every workload, captured from the unchecked (GCC)
// build. All workloads are deterministic (LCG-synthesised inputs), so
// any change to the front end, a code generator, the machine, or a
// workload source that alters semantics shows up here immediately. The
// cross-mode comparison tests then guarantee BCC and Cash agree with
// these values too.
var goldenOutputs = map[string][]int32{
	"svd96x64":    {19560},
	"volren24":    {343954},
	"fft32":       {-51763},
	"gauss40":     {2},
	"matmul40":    {3999517},
	"edge160x120": {2321419},
	"toast":       {28749},
	"cjpeg":       {86222},
	"quat":        {24360},
	"raylab":      {46061},
	"speex":       {66022},
	"gif2png":     {299765},
	"qpopper":     {13925},
	"apache":      {140741},
	"sendmail":    {15302542},
	"wuftpd":      {13466089},
	"pureftpd":    {297947},
	"bind":        {73760},
	"libc":        {16470887},
}

func TestWorkloadGoldenOutputs(t *testing.T) {
	if len(goldenOutputs) != len(All()) {
		t.Fatalf("golden table has %d entries, suite has %d", len(goldenOutputs), len(All()))
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := goldenOutputs[w.Name]
			if !ok {
				t.Fatalf("no golden output for %s", w.Name)
			}
			art, err := core.Build(w.Source, core.ModeGCC, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := art.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) != len(want) {
				t.Fatalf("output %v, want %v", res.Output, want)
			}
			for i := range want {
				if res.Output[i] != want[i] {
					t.Fatalf("output[%d] = %d, want %d", i, res.Output[i], want[i])
				}
			}
		})
	}
}
