package workload

// The six network applications of Tables 7-8. Each program is one
// request-handler process: it parses an embedded request exactly as the
// real server's hot path does (byte-at-a-time scanning into fixed
// buffers), performs the application work, and prints a response
// checksum. The netsim harness runs one fresh machine per request —
// the paper's forked-process-per-request server model — so per-program
// and per-array set-up costs are paid per request, as they are in the
// paper's latency measurements.

// Qpopper is the POP3 server skeleton: command parse plus RETR of a
// message from an in-memory mailbox with dot-stuffing.
func Qpopper() Workload {
	return Workload{
		Name:        "qpopper",
		Paper:       "Qpopper",
		Description: "POP3 handler: parse command, RETR message with dot-stuffing",
		Category:    CategoryNetwork,
		Source: `
// Qpopper skeleton: one POP3 RETR transaction.
char request[16] = "RETR 3";
char mailbox[4096];  // concatenated messages
int msgstart[16];    // message offsets
int msgcount;
char line[128];
char response[4096];

int parseCommand(char *cmd, int *argOut) {
	char verb[8];
	int i = 0;
	while (cmd[i] != ' ' && cmd[i] != 0 && i < 7) {
		verb[i] = cmd[i];
		i++;
	}
	verb[i] = 0;
	int arg = 0;
	if (cmd[i] == ' ') {
		i++;
		while (cmd[i] >= '0' && cmd[i] <= '9') {
			arg = arg * 10 + (cmd[i] - '0');
			i++;
		}
	}
	*argOut = arg;
	// Verb code: sum of letters identifies RETR/LIST/DELE well enough.
	int code = 0;
	for (int k = 0; verb[k] != 0; k++) code += verb[k];
	return code;
}

void main() {
	// Synthesise a mailbox of 8 short messages.
	int seed = 2024;
	msgcount = 8;
	int pos = 0;
	for (int msg = 0; msg < 8; msg++) {
		msgstart[msg] = pos;
		for (int l = 0; l < 4; l++) {
			int len = 20 + ((seed >> 16) & 31);
			seed = seed * 1103515245 + 12345;
			for (int ch = 0; ch < len && pos < 1400; ch++) {
				seed = seed * 1103515245 + 12345;
				mailbox[pos] = 'a' + ((seed >> 16) & 15);
				pos++;
			}
			if (pos < 1400) { mailbox[pos] = '\n'; pos++; }
		}
	}
	msgstart[8] = pos;

	int arg;
	int verb = parseCommand(request, &arg);
	int out = 0;
	if (verb == 'R' + 'E' + 'T' + 'R' && arg >= 1 && arg <= msgcount) {
		int start = msgstart[arg-1];
		int end = msgstart[arg];
		int ll = 0;
		for (int i = start; i < end; i++) {
			line[ll] = mailbox[i];
			ll++;
			if (mailbox[i] == '\n' || ll >= 120) {
				// Dot-stuff and emit the line.
				if (line[0] == '.' && out < 4000) { response[out] = '.'; out++; }
				for (int k = 0; k < ll && out < 4000; k++) {
					response[out] = line[k];
					out++;
				}
				ll = 0;
			}
		}
	}
	int check = out;
	for (int i = 0; i < out; i++) check += response[i];
	printi(check);
}
`,
	}
}

// Apache is the HTTP server skeleton: request-line and header parsing,
// URI unescaping, and response assembly from an in-memory document.
func Apache() Workload {
	return Workload{
		Name:        "apache",
		Paper:       "Apache",
		Description: "HTTP handler: parse request+headers, serve a document",
		Category:    CategoryNetwork,
		Source: `
// Apache skeleton: one GET transaction.
char request[192] = "GET /docs/index%20v2.html HTTP/1.0\nHost: www.example.org\nUser-Agent: reprobench/1.0\nAccept: text/html\nConnection: close\n\n";
char method[8];
char uri[64];
char decoded[64];
char hdrname[32];
char hdrval[64];
char doc[2048];
char response[3072];

int hexval(int c) {
	if (c >= '0' && c <= '9') return c - '0';
	if (c >= 'a' && c <= 'f') return c - 'a' + 10;
	if (c >= 'A' && c <= 'F') return c - 'A' + 10;
	return 0;
}

void main() {
	// Synthesise the served document.
	int seed = 8080;
	for (int i = 0; i < 2048; i++) {
		seed = seed * 1103515245 + 12345;
		doc[i] = ' ' + ((seed >> 16) & 63);
	}
	// Parse the request line.
	int p = 0;
	int i = 0;
	while (request[p] != ' ' && request[p] != 0 && i < 7) {
		method[i] = request[p];
		i++; p++;
	}
	method[i] = 0;
	while (request[p] == ' ') p++;
	i = 0;
	while (request[p] != ' ' && request[p] != 0 && i < 63) {
		uri[i] = request[p];
		i++; p++;
	}
	uri[i] = 0;
	while (request[p] != '\n' && request[p] != 0) p++;
	if (request[p] == '\n') p++;
	// Percent-decode the URI.
	int d = 0;
	for (int k = 0; uri[k] != 0 && d < 63; k++) {
		if (uri[k] == '%' && uri[k+1] != 0 && uri[k+2] != 0) {
			decoded[d] = hexval(uri[k+1]) * 16 + hexval(uri[k+2]);
			k += 2;
		} else {
			decoded[d] = uri[k];
		}
		d++;
	}
	decoded[d] = 0;
	// Parse headers, accumulating a hash per header.
	int hdrhash = 0;
	while (request[p] != 0 && request[p] != '\n') {
		int n = 0;
		while (request[p] != ':' && request[p] != '\n' && request[p] != 0 && n < 31) {
			hdrname[n] = request[p];
			n++; p++;
		}
		hdrname[n] = 0;
		if (request[p] == ':') p++;
		while (request[p] == ' ') p++;
		int v = 0;
		while (request[p] != '\n' && request[p] != 0 && v < 63) {
			hdrval[v] = request[p];
			v++; p++;
		}
		hdrval[v] = 0;
		if (request[p] == '\n') p++;
		for (int k = 0; k < n; k++) hdrhash = hdrhash * 31 + hdrname[k];
		for (int k = 0; k < v; k++) hdrhash = hdrhash * 7 + hdrval[k];
	}
	// Build the response: status line + body copy.
	char status[32] = "HTTP/1.0 200 OK";
	int out = 0;
	for (int k = 0; status[k] != 0; k++) { response[out] = status[k]; out++; }
	response[out] = '\n'; out++;
	for (int k = 0; k < 2048 && out < 3071; k++) {
		response[out] = doc[k];
		out++;
	}
	int check = hdrhash & 0xffff;
	for (int k = 0; decoded[k] != 0; k++) check += decoded[k];
	for (int k = 0; k < out; k++) check += response[k];
	printi(check);
}
`,
	}
}

// Sendmail is the SMTP server skeleton: envelope parsing and ruleset-
// style address rewriting. Its rewriting loops juggle four byte buffers
// at once, which is why the paper finds it has the most >3-array loops
// (11%) and the highest Cash penalty (9.8%).
func Sendmail() Workload {
	return Workload{
		Name:        "sendmail",
		Paper:       "Sendmail",
		Description: "SMTP handler: envelope parse + ruleset address rewriting",
		Category:    CategoryNetwork,
		Source: `
// Sendmail skeleton: one MAIL/RCPT/DATA transaction.
char envelope[160] = "MAIL FROM:<alice.cooper@research.example.com>\nRCPT TO:<bob@mail.example.org>\nRCPT TO:<carol@lists.example.net>\n";
char localpart[64];
char domain[64];
char rewritten[128];
char workbuf[128];
char canon[128];
char body[1024];
int rcptcount;

// rewriteAddress applies ruleset-style rewriting: split, canonicalise
// the domain, and reassemble. Like the real ruleset engine, the fused
// passes keep four byte buffers live in a single loop — these are the
// ">3 arrays" loops Table 7 reports for Sendmail.
int rewriteAddress(char *addr, int n) {
	int li = 0;
	int di = 0;
	int at = -1;
	for (int i = 0; i < n; i++) {
		if (addr[i] == '@') { at = i; break; }
	}
	if (at < 0) return 0;
	// Fused split pass: reads addr, writes localpart, domain and the
	// ruleset work buffer in one scan (4 distinct arrays).
	for (int i = 0; i < n && i < 63; i++) {
		int c = addr[i];
		if (c >= 'A' && c <= 'Z') c = c + 32;
		if (i < at) {
			localpart[li] = c;
			li++;
		} else {
			if (i > at) {
				domain[di] = addr[i];
				di++;
			}
		}
		workbuf[i] = c;
	}
	localpart[li] = 0;
	domain[di] = 0;
	// Canonicalise: reverse the domain labels into canon via workbuf.
	int w = 0;
	int c2 = 0;
	int start = 0;
	for (int i = 0; i <= di; i++) {
		if (i == di || domain[i] == '.') {
			for (int k = i - 1; k >= start; k--) {
				workbuf[w] = domain[k];
				w++;
			}
			workbuf[w] = '.';
			w++;
			start = i + 1;
		}
	}
	for (int i = w - 2; i >= 0; i--) {
		canon[c2] = workbuf[i];
		c2++;
	}
	canon[c2] = 0;
	// Reassemble into rewritten.
	int r = 0;
	for (int i = 0; i < li; i++) { rewritten[r] = localpart[i]; r++; }
	rewritten[r] = '@'; r++;
	for (int i = 0; i < c2; i++) { rewritten[r] = canon[i]; r++; }
	rewritten[r] = 0;
	int hash = 0;
	for (int i = 0; i < r; i++) hash = hash * 33 + rewritten[i];
	return hash;
}

void main() {
	int seed = 25;
	for (int i = 0; i < 1024; i++) {
		seed = seed * 1103515245 + 12345;
		body[i] = ' ' + ((seed >> 16) & 63);
	}
	char addr[80];
	int check = 0;
	int p = 0;
	while (envelope[p] != 0) {
		// Find the <...> address on this line.
		int a = 0;
		int copying = 0;
		while (envelope[p] != '\n' && envelope[p] != 0) {
			if (envelope[p] == '>') copying = 0;
			if (copying == 1 && a < 79) {
				addr[a] = envelope[p];
				a++;
			}
			if (envelope[p] == '<') copying = 1;
			p++;
		}
		if (envelope[p] == '\n') p++;
		if (a > 0) {
			addr[a] = 0;
			check += rewriteAddress(addr, a);
			rcptcount++;
		}
	}
	// "Deliver": checksum the body as the data phase would.
	int bodysum = 0;
	for (int i = 0; i < 1024; i++) bodysum += body[i];
	printi((check & 0xffffff) + bodysum + rcptcount);
}
`,
	}
}

// WuFTPD is the FTP server skeleton: path canonicalisation and a file
// transfer loop (block CRC), the long-running data path that gives it
// the lowest relative penalty in Table 8.
func WuFTPD() Workload {
	return Workload{
		Name:        "wuftpd",
		Paper:       "Wu-ftpd",
		Description: "FTP handler: path canonicalisation + block transfer CRC",
		Category:    CategoryNetwork,
		Source: `
// Wu-ftpd skeleton: one RETR transaction.
char request[64] = "RETR /pub/./dists/../dists/stable/README.txt";
char path[64];
char canon[64];
char filedata[1536];
int crctab[256];

void main() {
	// CRC table set-up (as the real transfer path does once).
	for (int n = 0; n < 256; n++) {
		int c = n;
		for (int k = 0; k < 8; k++) {
			if (c & 1) c = (c >> 1) ^ 0x6db88320;
			else c = c >> 1;
		}
		crctab[n] = c;
	}
	// Extract the path argument.
	int p = 0;
	while (request[p] != ' ' && request[p] != 0) p++;
	while (request[p] == ' ') p++;
	int n = 0;
	while (request[p] != 0 && n < 63) {
		path[n] = request[p];
		n++; p++;
	}
	path[n] = 0;
	// Canonicalise: resolve '.', '..' and '//' components.
	int out = 0;
	int i = 0;
	while (path[i] != 0) {
		while (path[i] == '/') i++;
		int start = i;
		while (path[i] != '/' && path[i] != 0) i++;
		int len = i - start;
		if (len == 0) continue;
		if (len == 1 && path[start] == '.') continue;
		if (len == 2 && path[start] == '.' && path[start+1] == '.') {
			// Pop the previous component.
			while (out > 0 && canon[out-1] != '/') out--;
			if (out > 0) out--;
			continue;
		}
		canon[out] = '/';
		out++;
		for (int k = start; k < i && out < 63; k++) {
			canon[out] = path[k];
			out++;
		}
	}
	canon[out] = 0;
	// Synthesise the file and "transfer" it with a running CRC.
	int seed = 0;
	for (int k = 0; k < out; k++) seed = seed * 31 + canon[k];
	for (int k = 0; k < 1536; k++) {
		seed = seed * 1103515245 + 12345;
		filedata[k] = (seed >> 16) & 0xff;
	}
	int crc = -1;
	for (int k = 0; k < 1536; k++) {
		crc = (crc >> 8) ^ crctab[(crc ^ filedata[k]) & 0xff];
	}
	int check = crc & 0xffffff;
	for (int k = 0; k < out; k++) check += canon[k];
	printi(check);
}
`,
	}
}

// PureFTPD is the lighter FTP server skeleton: command dispatch plus
// directory-listing generation.
func PureFTPD() Workload {
	return Workload{
		Name:        "pureftpd",
		Paper:       "Pure-ftpd",
		Description: "FTP handler: command dispatch + LIST generation",
		Category:    CategoryNetwork,
		Source: `
// Pure-ftpd skeleton: one LIST transaction.
char request[32] = "LIST /pub/mirrors";
char names[2048];  // 128 entries x 16 bytes
int sizes[128];
char listing[6144];

// appendEntry renders one directory entry (name, size, newline) into the
// listing at offset out and returns the new offset.
int appendEntry(int e, int out) {
	for (int k = 0; k < 15; k++) {
		listing[out] = names[e*16+k];
		out++;
	}
	listing[out] = ' ';
	out++;
	// Decimal rendering into a small local buffer.
	char digits[12];
	int v = sizes[e];
	int nd = 0;
	if (v == 0) { digits[0] = '0'; nd = 1; }
	while (v > 0) {
		digits[nd] = '0' + v % 10;
		v = v / 10;
		nd++;
	}
	for (int k = nd - 1; k >= 0; k--) {
		listing[out] = digits[k];
		out++;
	}
	listing[out] = '\n';
	out++;
	return out;
}

void main() {
	// Synthesise the directory.
	int seed = 21;
	for (int e = 0; e < 128; e++) {
		for (int k = 0; k < 15; k++) {
			seed = seed * 1103515245 + 12345;
			names[e*16+k] = 'a' + ((seed >> 16) & 25);
		}
		names[e*16+15] = 0;
		seed = seed * 1103515245 + 12345;
		sizes[e] = (seed >> 12) & 0xfffff;
	}
	// Parse verb.
	int verb = 0;
	int p = 0;
	while (request[p] != ' ' && request[p] != 0) {
		verb = verb * 31 + request[p];
		p++;
	}
	// Generate the listing: name, padded size in decimal.
	int out = 0;
	for (int e = 0; e < 128 && out < 6000; e++) {
		out = appendEntry(e, out);
	}
	int check = verb & 0xffff;
	for (int k = 0; k < out; k++) check += listing[k];
	printi(check);
}
`,
	}
}

// Bind is the DNS server skeleton: wire-format query parsing with
// compression-pointer handling and a zone-table lookup.
func Bind() Workload {
	return Workload{
		Name:        "bind",
		Paper:       "Bind",
		Description: "DNS handler: parse query labels, zone lookup, build answer",
		Category:    CategoryNetwork,
		Source: `
// Bind skeleton: one A-record query.
char query[64] = {
	0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
	3, 'w', 'w', 'w', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
	0x00, 0x01, 0x00, 0x01};
char qname[64];
int zonehash[512]; // hashed zone names
int zoneaddr[512]; // corresponding addresses
char answer[128];

void main() {
	// Synthesise the zone table.
	int seed = 53;
	for (int e = 0; e < 512; e++) {
		seed = seed * 1103515245 + 12345;
		zonehash[e] = (seed >> 8) & 0x7fffffff;
		zoneaddr[e] = seed & 0x7fffffff;
	}
	// Decode the question name (label-by-label).
	int p = 12;
	int q = 0;
	int hash = 5381;
	while (query[p] != 0 && q < 60) {
		int len = query[p];
		p++;
		for (int k = 0; k < len && q < 60; k++) {
			qname[q] = query[p];
			hash = hash * 33 + query[p];
			q++; p++;
		}
		qname[q] = '.';
		q++;
	}
	qname[q] = 0;
	// Plant the query's hash into the zone so the lookup hits.
	zonehash[(hash & 0x7fffffff) % 512] = hash & 0x7fffffff;
	// Look up.
	int want = hash & 0x7fffffff;
	int addr = -1;
	for (int probe = 0; probe < 512; probe++) {
		int slot = (want + probe) % 512;
		if (zonehash[slot] == want) { addr = zoneaddr[slot]; break; }
	}
	// Walk the zone for authority and additional records, as the real
	// server assembles NS/glue sections per answer.
	int auth = 0;
	for (int pass = 0; pass < 6; pass++) {
		for (int e = 0; e < 512; e++) {
			if ((zonehash[e] & 0xf) == (want & 0xf)) {
				auth += zoneaddr[e] & 0xff;
			}
		}
	}
	// Build the answer: header echo + name + A record.
	int out = 0;
	for (int k = 0; k < 12; k++) { answer[out] = query[k]; out++; }
	for (int k = 0; k < q; k++) { answer[out] = qname[k]; out++; }
	for (int k = 0; k < 4; k++) {
		answer[out] = (addr >> (k * 8)) & 0xff;
		out++;
	}
	int check = auth & 0xffff;
	for (int k = 0; k < out; k++) check += answer[k];
	printi(check + (addr & 0xffff));
}
`,
	}
}
