package workload

import (
	"testing"

	"cash/internal/core"
)

// TestRangeKernelsRunIdenticallyAcrossModes is the correctness gate for
// the range kernels, with and without the full pass pipeline.
func TestRangeKernelsRunIdenticallyAcrossModes(t *testing.T) {
	for _, passes := range [][]string{nil, {"rce", "hoist", "affine"}} {
		for _, w := range RangeKernels() {
			w, passes := w, passes
			name := w.Name
			if passes != nil {
				name += "/full-pipeline"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cmp, err := core.Compare(w.Name, w.Source, core.Options{Passes: passes})
				if err != nil {
					t.Fatal(err)
				}
				if len(cmp.GCC.Output) == 0 {
					t.Fatal("workload must print a checksum")
				}
				if cmp.GCC.Cycles == 0 {
					t.Fatal("workload must consume cycles")
				}
			})
		}
	}
}

func TestRangeKernelsResolveByName(t *testing.T) {
	for _, w := range RangeKernels() {
		if _, ok := ByName(w.Name); !ok {
			t.Errorf("%s must resolve through ByName", w.Name)
		}
		if w.Category != CategoryKernel {
			t.Errorf("%s: category %v", w.Name, w.Category)
		}
	}
	// The paper suite itself is unchanged.
	if got := len(All()); got != 19 {
		t.Errorf("All() has %d workloads, want 19 (range kernels ride separately)", got)
	}
}
