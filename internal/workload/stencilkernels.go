package workload

import "fmt"

// Stencil kernels: three synthetic programs whose inner loops read
// several neighbouring elements of the same array in straight line —
// a[i-1], a[i], a[i+1] and friends. They exercise the shapes the "chop"
// consolidation pass must recognise: groups of checks on one array
// whose indices differ only by a constant, with no call, branch or
// index store between them. Like the range kernels they are not part of
// the paper's tables and stay out of All(); benchmarks and tests pull
// them in through StencilKernels().

// StencilKernels returns the three stencil kernels at their default
// sizes.
func StencilKernels() []Workload {
	return []Workload{
		Smooth(256, 8),
		Jacobi2D(24, 16),
		Wave1D(200, 12),
	}
}

// Smooth applies a 3-point moving average repeatedly: the canonical
// 1-D stencil with three same-array reads per iteration, one constant
// delta apart.
func Smooth(n, iters int) Workload {
	src := fmt.Sprintf(`
// Repeated 3-point moving average over a 1-D signal.
int a[%[1]d];
int b[%[1]d];
void main() {
	int n = %[1]d;
	for (int i = 0; i < n; i++) a[i] = (i * 17) %% 101;
	for (int t = 0; t < %[2]d; t++) {
		for (int i = 1; i < n - 1; i++) {
			b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3;
		}
		for (int i = 1; i < n - 1; i++) {
			a[i] = b[i];
		}
	}
	int s = 0;
	for (int i = 0; i < n; i++) s += a[i] %% 9973;
	printi(s);
}
`, n, iters)
	return Workload{
		Name:        fmt.Sprintf("smooth%d", n),
		Paper:       "(stencil kernel)",
		Description: fmt.Sprintf("%d-point signal, %d rounds of 3-tap smoothing", n, iters),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// Jacobi2D sweeps a 5-point Jacobi relaxation over a flattened n x n
// grid: five same-array reads per inner iteration whose flattened
// indices differ by -n, -1, 0, +1 and +n — a constant-delta group once
// the row base i*n+j is shared.
func Jacobi2D(n, iters int) Workload {
	src := fmt.Sprintf(`
// 5-point Jacobi relaxation on a flattened n x n grid.
int u[%[1]d]; // n*n
int v[%[1]d];
void main() {
	int n = %[2]d;
	for (int i = 0; i < n * n; i++) u[i] = (i * 29) %% 97;
	for (int t = 0; t < %[3]d; t++) {
		for (int i = 1; i < n - 1; i++) {
			for (int j = 1; j < n - 1; j++) {
				int c = i * n + j;
				v[c] = (u[c - n] + u[c - 1] + u[c] + u[c + 1] + u[c + n]) / 5;
			}
		}
		for (int i = 1; i < n - 1; i++) {
			for (int j = 1; j < n - 1; j++) {
				u[i * n + j] = v[i * n + j];
			}
		}
	}
	int s = 0;
	for (int i = 0; i < n * n; i++) s += u[i] %% 9973;
	printi(s);
}
`, n*n, n, iters)
	return Workload{
		Name:        fmt.Sprintf("jacobi%d", n),
		Paper:       "(stencil kernel)",
		Description: fmt.Sprintf("%dx%d grid, %d Jacobi sweeps", n, n, iters),
		Category:    CategoryKernel,
		Source:      src,
	}
}

// Wave1D steps the 1-D wave equation with a leapfrog scheme: each
// update reads the previous field at three neighbouring points and the
// field before that at the centre — two consolidation groups per
// iteration over two arrays.
func Wave1D(n, steps int) Workload {
	src := fmt.Sprintf(`
// Leapfrog 1-D wave equation in fixed point.
int cur[%[1]d];
int prev[%[1]d];
int next[%[1]d];
void main() {
	int n = %[1]d;
	for (int i = 0; i < n; i++) {
		cur[i] = (i * 7) %% 64;
		prev[i] = cur[i];
	}
	for (int t = 0; t < %[2]d; t++) {
		for (int i = 1; i < n - 1; i++) {
			next[i] = cur[i - 1] + cur[i + 1] - prev[i] + (cur[i] / 4);
		}
		for (int i = 1; i < n - 1; i++) {
			prev[i] = cur[i];
			cur[i] = next[i] %% 9973;
		}
	}
	int s = 0;
	for (int i = 0; i < n; i++) s += cur[i];
	printi(s);
}
`, n, steps)
	return Workload{
		Name:        fmt.Sprintf("wave%d", n),
		Paper:       "(stencil kernel)",
		Description: fmt.Sprintf("%d-point leapfrog wave equation, %d steps", n, steps),
		Category:    CategoryKernel,
		Source:      src,
	}
}
