package workload

import (
	"testing"

	"cash/internal/core"
)

// TestAllWorkloadsRunIdenticallyAcrossModes is the master correctness
// gate: every workload must compile under GCC, BCC and Cash, run to
// completion without bound violations, and print identical checksums.
func TestAllWorkloadsRunIdenticallyAcrossModes(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cmp, err := core.Compare(w.Name, w.Source, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(cmp.GCC.Output) == 0 {
				t.Fatal("workload must print a checksum")
			}
			if cmp.GCC.Cycles == 0 {
				t.Fatal("workload must consume cycles")
			}
		})
	}
}

// TestKernelsAreArrayIntensive: every Table 1 kernel must exercise the
// hardware-check path heavily under Cash and the software path under BCC.
func TestKernelsAreArrayIntensive(t *testing.T) {
	for _, w := range Kernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cmp, err := core.Compare(w.Name, w.Source, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if cmp.Cash.Stats.HWChecks == 0 {
				t.Error("cash must perform hardware checks")
			}
			if cmp.BCC.Stats.SWChecks == 0 {
				t.Error("bcc must perform software checks")
			}
			// The headline result: Cash's overhead is a small fraction of
			// BCC's on array-intensive kernels.
			if cmp.CashOverheadPct() >= cmp.BCCOverheadPct()/2 {
				t.Errorf("cash overhead %.1f%% vs bcc %.1f%%: cash must win clearly",
					cmp.CashOverheadPct(), cmp.BCCOverheadPct())
			}
		})
	}
}

// TestKernelCashOverheadSmall mirrors Table 1's headline: with enough
// segment registers the kernels' Cash overhead stays in the low single
// digits while BCC pays tens of percent.
func TestKernelCashOverheadSmall(t *testing.T) {
	for _, w := range Kernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cmp, err := core.Compare(w.Name, w.Source, core.Options{SegRegs: 4})
			if err != nil {
				t.Fatal(err)
			}
			if ov := cmp.CashOverheadPct(); ov > 12 {
				t.Errorf("cash overhead %.1f%% too high for a kernel", ov)
			}
			if ov := cmp.BCCOverheadPct(); ov < 20 {
				t.Errorf("bcc overhead %.1f%% implausibly low", ov)
			}
		})
	}
}

// TestNetworkAppCharacteristics reproduces the Table 7 shape: all apps
// have many array-using loops, few spilled loops, and sendmail has the
// largest spilled fraction.
func TestNetworkAppCharacteristics(t *testing.T) {
	frac := make(map[string]float64)
	for _, w := range NetworkApps() {
		ch, err := core.Characterize(w.Source, 3)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if ch.ArrayUsingLoops == 0 {
			t.Errorf("%s: no array-using loops", w.Name)
		}
		if ch.Lines == 0 {
			t.Errorf("%s: no lines counted", w.Name)
		}
		frac[w.Name] = float64(ch.SpilledLoops) / float64(ch.ArrayUsingLoops)
	}
	for name, f := range frac {
		if name == "sendmail" {
			continue
		}
		if f > frac["sendmail"] {
			t.Errorf("%s spilled fraction %.2f exceeds sendmail's %.2f", name, f, frac["sendmail"])
		}
	}
}

// TestMatMulScaling reproduces the Table 3 property: Cash's relative
// overhead decreases as the input grows, because its absolute overhead is
// size-independent once checks are in hardware.
func TestMatMulScaling(t *testing.T) {
	var last float64 = 1e9
	for _, n := range []int{8, 16, 32} {
		w := MatMul(n)
		cmp, err := core.Compare(w.Name, w.Source, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ov := cmp.CashOverheadPct()
		if ov >= last && ov > 1.0 {
			t.Errorf("matmul%d: overhead %.2f%% did not shrink (prev %.2f%%)", n, ov, last)
		}
		last = ov
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("toast"); !ok {
		t.Error("toast must be registered")
	}
	if _, ok := ByName("no-such-workload"); ok {
		t.Error("unknown workload must not resolve")
	}
	if got := len(All()); got != 19 {
		t.Errorf("suite has %d workloads, want 19 (18 apps + libc corpus)", got)
	}
}

func TestCategories(t *testing.T) {
	for _, w := range Kernels() {
		if w.Category != CategoryKernel {
			t.Errorf("%s: category %v", w.Name, w.Category)
		}
	}
	for _, w := range Macros() {
		if w.Category != CategoryMacro {
			t.Errorf("%s: category %v", w.Name, w.Category)
		}
	}
	for _, w := range NetworkApps() {
		if w.Category != CategoryNetwork {
			t.Errorf("%s: category %v", w.Name, w.Category)
		}
	}
}
