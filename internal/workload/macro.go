package workload

// The six macro applications of Tables 4-6. Each mirrors the
// computational skeleton of the paper's program — the data-access pattern
// (frame loops with local scratch arrays, block transforms, per-pixel
// iteration, byte-stream decoding) is what determines bound-checking
// cost, so the skeletons preserve it while the I/O is replaced by
// deterministic synthetic data.

// Toast is the GSM 06.10 audio compression skeleton: per-frame
// preprocessing, autocorrelation, reflection coefficients (Schur
// recursion), LTP search and quantisation. Its defining property for
// Cash is frame-processing functions with local scratch arrays called
// hundreds of times — the workload that stresses the 3-entry segment
// cache (§4.5).
func Toast() Workload {
	return Workload{
		Name:        "toast",
		Paper:       "Toast",
		Description: "GSM-style audio compression: LPC frames over synthetic PCM",
		Category:    CategoryMacro,
		Source: `
// Toast skeleton: GSM 06.10-style frame compression.
int pcm[160];      // one frame of samples
int history[120];  // long-term predictor history
int outbits[76];   // packed frame output
int framesum;

// autocorr computes 9 autocorrelation lags into a local array and
// returns the quantised reflection energy.
int autocorr(int *s, int n) {
	int acf[9];
	for (int k = 0; k < 9; k++) {
		int sum = 0;
		for (int i = k; i < n; i++) {
			sum += (s[i] * s[i-k]) >> 8;
		}
		acf[k] = sum;
	}
	// Schur-style recursion on a working copy.
	int p[9];
	int refl[8];
	for (int k = 0; k < 9; k++) p[k] = acf[k];
	for (int k = 0; k < 8; k++) {
		if (p[0] == 0) { refl[k] = 0; continue; }
		int r = (p[k+1] << 7) / (p[0] + 1);
		refl[k] = r;
		for (int i = 0; i + k + 1 < 9; i++) {
			p[i+k+1] -= (r * p[i]) >> 7;
		}
	}
	int e = 0;
	for (int k = 0; k < 8; k++) {
		int v = refl[k]; if (v < 0) v = -v;
		e += v;
	}
	return e;
}

// ltpSearch finds the best long-term predictor lag against the history.
int ltpSearch(int *s, int n) {
	int best = 0;
	int bestLag = 40;
	for (int lag = 40; lag < 120; lag++) {
		int corr = 0;
		for (int i = 0; i < 40; i++) {
			corr += (s[i] * history[119 - lag + i]) >> 8;
		}
		if (corr > best) { best = corr; bestLag = lag; }
	}
	return bestLag;
}

// quantise packs coefficients into the output bit array.
void quantise(int e, int lag, int frame) {
	int codes[12];
	for (int i = 0; i < 12; i++) {
		codes[i] = ((e >> (i % 6)) + lag + frame * 13) & 0x3f;
	}
	for (int i = 0; i < 76; i++) {
		outbits[i] = (outbits[i] + codes[i % 12]) & 0xff;
	}
}

void main() {
	int seed = 1234;
	int frames = 120;
	for (int f = 0; f < frames; f++) {
		// Synthesise one PCM frame (offset-compensated).
		for (int i = 0; i < 160; i++) {
			seed = seed * 1103515245 + 12345;
			pcm[i] = ((seed >> 16) & 0xfff) - 2048;
		}
		int e = autocorr(pcm, 160);
		int lag = ltpSearch(pcm, 160);
		quantise(e, lag, f);
		// Update predictor history.
		for (int i = 0; i < 120; i++) {
			history[i] = pcm[i] >> 2;
		}
		framesum += (e + lag) % 1021;
	}
	int check = framesum;
	for (int i = 0; i < 76; i++) check += outbits[i];
	printi(check);
}
`,
	}
}

// Cjpeg is the JPEG compression skeleton: colour conversion, 8x8 forward
// DCT, quantisation and zigzag run-length coding over a synthetic image.
func Cjpeg() Workload {
	return Workload{
		Name:        "cjpeg",
		Paper:       "Cjpeg",
		Description: "JPEG-style compression: blockwise DCT + quantisation + RLE",
		Category:    CategoryMacro,
		Source: `
// Cjpeg skeleton: 8x8 block DCT compression of a 128x128 image.
int image[16384];   // 128*128 luma
int quant[64] = {
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99};
int zigzag[64] = {
	0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};
int bitcount;

// fdct8 performs a separable 8-point DCT pass (integer approximation).
void fdct8(int *v) {
	int t[8];
	for (int i = 0; i < 8; i++) t[i] = v[i];
	for (int k = 0; k < 8; k++) {
		int s = 0;
		for (int i = 0; i < 8; i++) {
			// cos approximated by a small integer kernel.
			int c = ((k * (2 * i + 1)) % 32) - 16;
			s += t[i] * c;
		}
		v[k] = s >> 4;
	}
}

// encodeBlock transforms one 8x8 block in place and run-length codes it.
int encodeBlock(int bx, int by) {
	int blk[64];
	for (int y = 0; y < 8; y++) {
		for (int x = 0; x < 8; x++) {
			blk[y*8+x] = image[(by*8+y)*128 + bx*8 + x] - 128;
		}
	}
	// Row then column DCT passes.
	for (int y = 0; y < 8; y++) fdct8(&blk[y*8]);
	int col[8];
	for (int x = 0; x < 8; x++) {
		for (int y = 0; y < 8; y++) col[y] = blk[y*8+x];
		fdct8(col);
		for (int y = 0; y < 8; y++) blk[y*8+x] = col[y];
	}
	// Quantise.
	for (int i = 0; i < 64; i++) blk[i] = blk[i] / quant[i];
	// Zigzag RLE: count bits for nonzero coefficients.
	int bits = 0;
	int run = 0;
	for (int i = 0; i < 64; i++) {
		int v = blk[zigzag[i]];
		if (v == 0) { run++; continue; }
		if (v < 0) v = -v;
		int mag = 0;
		while (v > 0) { mag++; v = v >> 1; }
		bits += 4 + mag + (run >> 4) * 11;
		run = 0;
	}
	return bits;
}

void main() {
	int seed = 555;
	for (int i = 0; i < 16384; i++) {
		seed = seed * 1103515245 + 12345;
		image[i] = (seed >> 16) & 0xff;
	}
	for (int by = 0; by < 16; by++) {
		for (int bx = 0; bx < 16; bx++) {
			bitcount += encodeBlock(bx, by);
		}
	}
	printi(bitcount % 1000000);
}
`,
	}
}

// Quat is the 3D quaternion Julia fractal generator skeleton: per-pixel
// escape-time iteration of q <- q^2 + c in 8.8 fixed point.
func Quat() Workload {
	return Workload{
		Name:        "quat",
		Paper:       "Quat",
		Description: "quaternion Julia fractal, per-pixel escape iteration",
		Category:    CategoryMacro,
		Source: `
// Quat skeleton: quaternion Julia set, 56x56 pixels, 8.8 fixed point.
// Quaternions live in 4-element arrays, as the real generator's vector
// code does.
int img[3136]; // 56*56 iteration counts
int hist[32];  // iteration histogram
int c[4] = {0, 102, 51, 0}; // Julia constant, 8.8 (w filled in main)

// quatSq squares q into nq (both 4-element arrays) and returns |q^2|^2
// in 8.8.
int quatSq(int *q, int *nq) {
	nq[0] = (q[0]*q[0] - q[1]*q[1] - q[2]*q[2] - q[3]*q[3]) >> 8;
	nq[1] = (2*q[0]*q[1]) >> 8;
	nq[2] = (2*q[0]*q[2]) >> 8;
	nq[3] = (2*q[0]*q[3]) >> 8;
	int norm = 0;
	for (int k = 0; k < 4; k++) norm += (nq[k]*nq[k]) >> 8;
	return norm;
}

void main() {
	int size = 56;
	c[0] = -205;
	c[3] = -26;
	int q[4];
	int nq[4];
	for (int py = 0; py < size; py++) {
		for (int px = 0; px < size; px++) {
			// Start point on the viewing plane.
			q[0] = ((px << 9) / size) - 256;
			q[1] = ((py << 9) / size) - 256;
			q[2] = 64;
			q[3] = 0;
			int it = 0;
			while (it < 30) {
				quatSq(q, nq);
				int norm = 0;
				for (int k = 0; k < 4; k++) {
					q[k] = nq[k] + c[k];
					norm += (q[k]*q[k]) >> 8;
				}
				if (norm > 1024) break;
				it++;
			}
			img[py*size+px] = it;
			hist[it % 32] += 1;
		}
	}
	int check = 0;
	for (int i = 0; i < size*size; i++) check += img[i];
	for (int i = 0; i < 32; i++) check += hist[i] * i;
	printi(check);
}
`,
	}
}

// RayLab is the raytracer skeleton: ray-sphere intersection with integer
// square root, flat shading, over a small scene.
func RayLab() Workload {
	return Workload{
		Name:        "raylab",
		Paper:       "RayLab",
		Description: "raytracer: ray-sphere intersection and shading",
		Category:    CategoryMacro,
		Source: `
// RayLab skeleton: raytrace 6 spheres onto a 48x48 plane, 8.8 fixed.
// Spheres are records of 5 words (cx, cy, cz, radius, shade) in one
// array, the layout the real renderer's struct array has in memory.
int sph[30] = {
	0,    0,    900,  200, 250,
	300,  200,  1200, 150, 200,
	-300, 100,  1000, 180, 150,
	150,  -250, 800,  120, 100,
	-150, -100, 1400, 220, 220,
	0,    300,  700,  90,  180};
int img[2304]; // 48*48

// isqrt computes the integer square root by Newton iteration.
int isqrt(int v) {
	if (v <= 0) return 0;
	int x = v;
	int y = (x + 1) / 2;
	while (y < x) {
		x = y;
		y = (x + v / x) / 2;
	}
	return x;
}

// trace returns the shade of the nearest sphere hit by the ray through
// pixel (px, py), or 0 for the background.
int trace(int dx, int dy, int dz) {
	int best = 0x7fffffff;
	int color = 0;
	for (int s = 0; s < 6; s++) {
		int base = s * 5;
		int cx = sph[base];
		int cy = sph[base+1];
		int cz = sph[base+2];
		int r = sph[base+3];
		// Ray origin is 0; solve |t*d - c|^2 = r^2 (scaled).
		int b = (dx*cx + dy*cy + dz*cz) >> 8;
		int cc = ((cx*cx + cy*cy + cz*cz) >> 8) - ((r*r) >> 8);
		int dd = (dx*dx + dy*dy + dz*dz) >> 8;
		if (dd == 0) continue;
		int disc = ((b*b) >> 8) - ((dd*cc) >> 8);
		if (disc <= 0) continue;
		int t = ((b - isqrt(disc << 8)) << 8) / dd;
		if (t > 16 && t < best) {
			best = t;
			color = sph[base+4] - (t >> 6);
			if (color < 0) color = 0;
		}
	}
	return color;
}

void main() {
	int size = 48;
	for (int py = 0; py < size; py++) {
		for (int px = 0; px < size; px++) {
			int dx = ((px << 9) / size) - 256;
			int dy = ((py << 9) / size) - 256;
			int dz = 256;
			img[py*size+px] = trace(dx, dy, dz);
		}
	}
	int check = 0;
	for (int i = 0; i < size*size; i++) check += img[i];
	printi(check);
}
`,
	}
}

// Speex is the voice codec skeleton: per-frame LPC analysis plus an
// exhaustive fixed-codebook search, the dominant CELP loop.
func Speex() Workload {
	return Workload{
		Name:        "speex",
		Paper:       "Speex",
		Description: "CELP-style voice coder: LPC + codebook search per frame",
		Category:    CategoryMacro,
		Source: `
// Speex skeleton: CELP frame coding with exhaustive codebook search.
int frame[40];      // subframe samples
int codebook[2560]; // 64 codewords x 40 samples
int excit[40];      // chosen excitation
int outcodes[64];   // per-frame winners
void main() {
	int seed = 777;
	for (int i = 0; i < 2560; i++) {
		seed = seed * 1103515245 + 12345;
		codebook[i] = ((seed >> 16) & 0xff) - 128;
	}
	int total = 0;
	for (int f = 0; f < 64; f++) {
		for (int i = 0; i < 40; i++) {
			seed = seed * 1103515245 + 12345;
			frame[i] = ((seed >> 16) & 0x3ff) - 512;
		}
		// Short-term prediction residual (2-tap).
		for (int i = 39; i >= 2; i--) {
			frame[i] = frame[i] - ((3 * frame[i-1]) >> 2) + (frame[i-2] >> 3);
		}
		// Exhaustive codebook search for max correlation / energy.
		int bestScore = -2147483647;
		int bestIdx = 0;
		for (int c = 0; c < 64; c++) {
			int corr = 0;
			int energy = 1;
			for (int i = 0; i < 40; i++) {
				int cw = codebook[c*40+i];
				corr += frame[i] * cw;
				energy += cw * cw;
			}
			int score = (corr / 256) * (corr / 256) / (energy / 256 + 1);
			if (corr < 0) score = -score;
			if (score > bestScore) { bestScore = score; bestIdx = c; }
		}
		outcodes[f] = bestIdx;
		for (int i = 0; i < 40; i++) excit[i] = codebook[bestIdx*40+i];
		total += bestIdx + (excit[0] & 0xf);
	}
	int check = total;
	for (int f = 0; f < 64; f++) check += outcodes[f] * f;
	printi(check);
}
`,
	}
}

// Gif2png is the image format converter skeleton: LZW-style decode of a
// synthetic code stream followed by PNG Paeth filtering per row.
func Gif2png() Workload {
	return Workload{
		Name:        "gif2png",
		Paper:       "Gif2png",
		Description: "GIF to PNG conversion: LZW-style decode + Paeth filter",
		Category:    CategoryMacro,
		Source: `
// Gif2png skeleton: dictionary decode + per-row Paeth filtering.
int codes[4096];    // synthetic input code stream
int prefix[4096];   // LZW dictionary
int suffix[4096];
char pixels[16384]; // 128*128 decoded image
char filtered[16384];
int stack[4096];

int paeth(int a, int b, int c) {
	int p = a + b - c;
	int pa = p - a; if (pa < 0) pa = -pa;
	int pb = p - b; if (pb < 0) pb = -pb;
	int pc = p - c; if (pc < 0) pc = -pc;
	if (pa <= pb && pa <= pc) return a;
	if (pb <= pc) return b;
	return c;
}

void main() {
	int seed = 31337;
	// Synthetic code stream referencing a growing dictionary.
	int dictSize = 256;
	for (int i = 0; i < 4096; i++) {
		seed = seed * 1103515245 + 12345;
		codes[i] = (seed >> 16) & (dictSize - 1);
		if (codes[i] < 0) codes[i] = -codes[i];
		if (dictSize < 4096) dictSize++;
	}
	for (int i = 0; i < 256; i++) { prefix[i] = -1; suffix[i] = i; }
	// Decode: expand each code through the dictionary onto a stack,
	// then pop pixels out; extend the dictionary as in LZW.
	int next = 256;
	int out = 0;
	int prev = codes[0] & 0xff;
	for (int i = 0; i < 4096 && out < 16384; i++) {
		int code = codes[i];
		if (code >= next) code = prev;
		int sp = 0;
		int cur = code;
		while (cur >= 0 && sp < 4096) {
			stack[sp] = suffix[cur];
			sp++;
			cur = prefix[cur];
		}
		while (sp > 0 && out < 16384) {
			sp--;
			pixels[out] = stack[sp];
			out++;
		}
		if (next < 4096) {
			prefix[next] = prev;
			suffix[next] = suffix[code];
			next++;
		}
		prev = code;
	}
	// Paeth filter each 128-byte row against the previous row.
	for (int y = 0; y < 128; y++) {
		for (int x = 0; x < 128; x++) {
			int a = 0; int b = 0; int c = 0;
			if (x > 0) a = pixels[y*128 + x - 1];
			if (y > 0) b = pixels[(y-1)*128 + x];
			if (x > 0 && y > 0) c = pixels[(y-1)*128 + x - 1];
			filtered[y*128+x] = (pixels[y*128+x] - paeth(a, b, c)) & 0xff;
		}
	}
	int check = 0;
	for (int i = 0; i < 16384; i++) check += filtered[i];
	printi(check % 1000003);
}
`,
	}
}
