package workload

import (
	"math"
	"testing"

	"cash/internal/core"
)

// Cross-implementation validation: each Table 1 kernel is reimplemented
// here in Go with the identical fixed-point arithmetic, and its checksum
// must equal the simulated machine's output. A mismatch implicates the
// front end, a code generator, or the machine — this is an end-to-end
// correctness oracle for the whole compilation stack, independent of the
// mini-C sources' golden values.

func runKernelGCC(t *testing.T, w Workload) int32 {
	t.Helper()
	art, err := core.Build(w.Source, core.ModeGCC, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	if len(res.Output) != 1 {
		t.Fatalf("output = %v, want one checksum", res.Output)
	}
	return res.Output[0]
}

func TestMatMulReference(t *testing.T) {
	n := 24
	a := make([]int32, n*n)
	b := make([]int32, n*n)
	c := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = int32((i+j)%17 + 1)
			b[i*n+j] = int32((i*3+j*7)%13 + 1)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
	var sum int32
	for i := 0; i < n*n; i++ {
		sum += c[i] % 9973
	}
	if got := runKernelGCC(t, MatMul(n)); got != sum {
		t.Fatalf("machine checksum %d, Go reference %d", got, sum)
	}
}

func TestGaussianReference(t *testing.T) {
	n := 24
	w := n + 1
	m := make([]int32, n*w)
	x := make([]int32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < w; j++ {
			if i == j {
				m[i*w+j] = int32(n*8) << 8
			} else {
				m[i*w+j] = int32((i*7+j*3)%9-4) << 8
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			f := (m[i*w+k] << 8) / m[k*w+k]
			for j := k; j < w; j++ {
				m[i*w+j] -= (f * m[k*w+j]) >> 8
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := m[i*w+n]
		for j := i + 1; j < n; j++ {
			s -= (m[i*w+j] * x[j]) >> 8
		}
		x[i] = (s << 8) / m[i*w+i]
	}
	var sum int32
	for i := 0; i < n; i++ {
		sum += x[i]
	}
	if got := runKernelGCC(t, Gaussian(n)); got != sum {
		t.Fatalf("machine checksum %d, Go reference %d", got, sum)
	}
}

func TestEdgeDetectReference(t *testing.T) {
	w, h := 64, 48
	img := make([]int32, w*h)
	gx := make([]int32, w*h)
	gy := make([]int32, w*h)
	edge := make([]int32, w*h)
	seed := int32(42)
	for i := range img {
		seed = seed*1103515245 + 12345
		img[i] = (seed >> 16) & 0xff
	}
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			p := y*w + x
			gx[p] = img[p-w+1] + 2*img[p+1] + img[p+w+1] -
				img[p-w-1] - 2*img[p-1] - img[p+w-1]
			gy[p] = img[p+w-1] + 2*img[p+w] + img[p+w+1] -
				img[p-w-1] - 2*img[p-w] - img[p-w+1]
		}
	}
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			p := y*w + x
			ax := gx[p]
			if ax < 0 {
				ax = -ax
			}
			ay := gy[p]
			if ay < 0 {
				ay = -ay
			}
			edge[p] = ax + ay
		}
	}
	var sum int32
	for i := range edge {
		sum += edge[i] % 251
	}
	if got := runKernelGCC(t, EdgeDetect(w, h)); got != sum {
		t.Fatalf("machine checksum %d, Go reference %d", got, sum)
	}
}

func TestVolumeRenderReference(t *testing.T) {
	g, r, steps := 16, 20, 16
	gg := g * g
	vol := make([]int32, g*g*g)
	image := make([]int32, r*r)
	opac := make([]int32, 64)
	emis := make([]int32, 64)
	seed := int32(7)
	for i := range vol {
		seed = seed*1103515245 + 12345
		vol[i] = (seed >> 16) & 0x3f
	}
	for d := int32(0); d < 64; d++ {
		opac[d] = d * 2
		emis[d] = (d * d) >> 4
	}
	for py := 0; py < r; py++ {
		for px := 0; px < r; px++ {
			x := (px * g) / r
			y := (py * g) / r
			idx := y*g + x
			var acc int32
			trans := int32(256)
			zlim := steps
			if zlim > g {
				zlim = g
			}
			for k := 0; k < zlim; k++ {
				d := vol[idx]
				idx += gg
				acc += (trans * emis[d]) >> 8
				trans -= (trans * opac[d]) >> 8
				if trans < 4 {
					break
				}
			}
			image[py*r+px] = acc
		}
	}
	var sum int32
	for i := range image {
		sum += image[i] % 769
	}
	if got := runKernelGCC(t, VolumeRender(g, r, steps)); got != sum {
		t.Fatalf("machine checksum %d, Go reference %d", got, sum)
	}
}

func TestSVDReference(t *testing.T) {
	m, n, iters := 24, 16, 8
	a := make([]int32, m*n)
	x := make([]int32, n)
	y := make([]int32, m)
	seed := int32(99)
	for i := range a {
		seed = seed*1103515245 + 12345
		a[i] = (seed>>16)%17 - 8
	}
	for j := range x {
		x[j] = 256
	}
	var sigma int32
	for it := 0; it < iters; it++ {
		for i := 0; i < m; i++ {
			var s int32
			for j := 0; j < n; j++ {
				s += a[i*n+j] * x[j]
			}
			y[i] = s >> 4
		}
		for j := 0; j < n; j++ {
			var s int32
			for i := 0; i < m; i++ {
				s += a[i*n+j] * y[i]
			}
			x[j] = s >> 4
		}
		var norm int32
		for j := 0; j < n; j++ {
			v := x[j]
			if v < 0 {
				v = -v
			}
			if v > norm {
				norm = v
			}
		}
		sigma = norm
		if norm > 0 {
			for j := 0; j < n; j++ {
				x[j] = (x[j] << 8) / norm
			}
		}
	}
	sum := sigma % 100000
	for j := 0; j < n; j++ {
		sum += x[j] % 641
	}
	if got := runKernelGCC(t, SVD(m, n, iters)); got != sum {
		t.Fatalf("machine checksum %d, Go reference %d", got, sum)
	}
}

func TestFFT2DReference(t *testing.T) {
	n := 16
	logn := 4
	nn := n * n
	re := make([]int32, nn)
	im := make([]int32, nn)
	sine := make([]int32, n)
	rev := make([]int32, n)
	for i := 0; i < n; i++ {
		sine[i] = int32(math.Round(256 * math.Sin(2*math.Pi*float64(i)/float64(2*n))))
	}
	for i := 0; i < n; i++ {
		r := 0
		v := i
		for bit := 0; bit < logn; bit++ {
			r = r<<1 | v&1
			v >>= 1
		}
		rev[i] = int32(r)
	}
	fft1d := func(rp, ip []int32) {
		for i := 0; i < n; i++ {
			j := rev[i]
			if int(j) > i {
				rp[i], rp[j] = rp[j], rp[i]
				ip[i], ip[j] = ip[j], ip[i]
			}
		}
		for length := 2; length <= n; length <<= 1 {
			half := length >> 1
			step := n / length
			for base := 0; base < n; base += length {
				for k := 0; k < half; k++ {
					widx := k * step
					wr := sine[widx+n>>1]
					wi := -sine[widx]
					ur := rp[base+k]
					ui := ip[base+k]
					vr := (rp[base+k+half]*wr - ip[base+k+half]*wi) >> 8
					vi := (rp[base+k+half]*wi + ip[base+k+half]*wr) >> 8
					rp[base+k] = ur + vr
					ip[base+k] = ui + vi
					rp[base+k+half] = ur - vr
					ip[base+k+half] = ui - vi
				}
			}
		}
	}
	for i := 0; i < nn; i++ {
		re[i] = ((int32(i)*1103 + 12345) >> 4) % 256
		im[i] = 0
	}
	for r := 0; r < n; r++ {
		fft1d(re[r*n:(r+1)*n], im[r*n:(r+1)*n])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			re[i*n+j], re[j*n+i] = re[j*n+i], re[i*n+j]
			im[i*n+j], im[j*n+i] = im[j*n+i], im[i*n+j]
		}
	}
	for r := 0; r < n; r++ {
		fft1d(re[r*n:(r+1)*n], im[r*n:(r+1)*n])
	}
	var sum int32
	for i := 0; i < nn; i++ {
		sum += (re[i] + im[i]) % 997
	}
	if got := runKernelGCC(t, FFT2D(n)); got != sum {
		t.Fatalf("machine checksum %d, Go reference %d", got, sum)
	}
}
