package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("Counter must be get-or-create stable")
	}
	g := r.Gauge("a.level")
	g.Set(10)
	g.SetMax(7) // lower: no-op
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.SetMax(12)
	if got := g.Value(); got != 12 {
		t.Fatalf("gauge after SetMax = %d, want 12", got)
	}
}

func TestRegistryKindClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotDeltaAndFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vm.runs")
	g := r.Gauge("ldt.peak_live")
	h := r.Histogram("lat.cycles", []uint64{100, 1000})
	c.Add(3)
	g.SetMax(9)
	h.Observe(50)
	before := r.Snapshot()
	c.Add(2)
	g.SetMax(11)
	h.Observe(500)
	d := r.Snapshot().Delta(before)
	if d.Counters["vm.runs"] != 2 {
		t.Fatalf("counter delta = %d, want 2", d.Counters["vm.runs"])
	}
	if d.Gauges["ldt.peak_live"] != 11 {
		t.Fatalf("gauge delta carries the level: got %d, want 11", d.Gauges["ldt.peak_live"])
	}
	if d.Histograms["lat.cycles"].Count != 1 {
		t.Fatalf("histogram delta count = %d, want 1", d.Histograms["lat.cycles"].Count)
	}

	text := d.Format()
	for _, want := range []string{
		"vm.runs 2\n",
		"ldt.peak_live 11\n",
		"lat.cycles.count 1\n",
		"lat.cycles.sum 500\n",
		"lat.cycles.le.100 0\n",
		"lat.cycles.le.1000 1\n",
		"lat.cycles.le.inf 1\n",
		"lat.cycles.p50 1000\n", // delta drops samples: bucket resolution
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Format missing %q:\n%s", want, text)
		}
	}

	// A delta against the empty snapshot is the snapshot itself.
	full := r.Snapshot()
	same := full.Delta(Snapshot{})
	if same.Counters["vm.runs"] != 5 || same.Histograms["lat.cycles"].Count != 2 {
		t.Fatal("delta against the empty snapshot must equal the snapshot")
	}
}

func TestSnapshotFormatSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Gauge("m.middle").Set(3)
	s := r.Snapshot()
	text := s.Format()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	want := []string{"a.first 2", "m.middle 3", "z.last 1"}
	for i, w := range want {
		if lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
	if text != s.Format() {
		t.Fatal("Format must be stable across calls")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Histogram("h", []uint64{10}).Observe(3)
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Count uint64 `json:"count"`
			P50   uint64 `json:"p50"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Counters["c"] != 7 {
		t.Fatalf("json counter = %d, want 7", parsed.Counters["c"])
	}
	if parsed.Histograms["h"].Count != 1 || parsed.Histograms["h"].P50 != 3 {
		t.Fatalf("json histogram = %+v", parsed.Histograms["h"])
	}
	// JSON must be deterministic (sorted map keys).
	again, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("JSON exposition must be byte-stable")
	}
}

// TestRegistryConcurrentPublish hammers one registry from many
// goroutines under -race and checks the commutative totals.
func TestRegistryConcurrentPublish(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("peak")
			h := r.Histogram("lat", DefaultCycleBounds())
			for i := 0; i < 500; i++ {
				c.Inc()
				g.SetMax(int64(w*500 + i))
				h.Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["hits"] != 4000 {
		t.Fatalf("hits = %d, want 4000", s.Counters["hits"])
	}
	if s.Gauges["peak"] != 7*500+499 {
		t.Fatalf("peak = %d, want %d", s.Gauges["peak"], 7*500+499)
	}
	if s.Histograms["lat"].Count != 4000 {
		t.Fatalf("lat count = %d, want 4000", s.Histograms["lat"].Count)
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default registry must be a process-wide singleton")
	}
}
