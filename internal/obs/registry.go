package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use; registry counters are shared handles, so one atomic add
// per publish is the entire hot-path cost.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-value/max-tracking int64 metric. Set is last-writer-
// wins and therefore only deterministic from a single goroutine; SetMax
// is commutative and safe to publish from fan-out workers.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v is larger (commutative).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a set of named metrics. Handles are get-or-create and
// stable for the registry's lifetime, so packages resolve them once at
// init and publish with plain atomic operations afterwards.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package publishes into
// (and `cashbench -metrics` exposes).
func Default() *Registry { return defaultRegistry }

func (r *Registry) checkFree(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic("obs: metric " + name + " already registered as a counter")
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic("obs: metric " + name + " already registered as a gauge")
	}
	if _, ok := r.hists[name]; ok && want != "histogram" {
		panic("obs: metric " + name + " already registered as a histogram")
	}
}

// Counter returns the named counter, creating it if needed. Registering
// the same name as a different metric kind panics: metric names are
// compile-time constants and a clash is a programming error.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it over the given
// bounds if needed. An existing histogram is returned as-is; the caller's
// bounds must describe the same boundary set.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's metrics. Snapshots
// are plain data: comparable across processes, delta-capable, and
// renderable as text or JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Delta returns what changed between prev (the earlier snapshot) and s.
// Counters and histogram accumulators subtract exactly; gauges are
// levels, not flows, so the delta carries their current value. Metrics
// absent from prev are treated as zero, so a delta against an empty
// snapshot equals s itself.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		d.Histograms[name] = h.Delta(prev.Histograms[name])
	}
	return d
}

// quantilePoints are the percentiles every histogram exposition reports.
var quantilePoints = [...]int{50, 95, 99}

// Format renders the snapshot as deterministic text, one metric per
// line, sorted by name. Histograms expand in place into their
// accumulators (count, sum, cumulative le.<bound> buckets) followed by
// derived nearest-rank p50/p95/p99 lines. The output contains no
// host-side quantity, so two runs of the same deterministic experiment
// produce identical text at any parallelism.
func (s Snapshot) Format() string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			fmt.Fprintf(&b, "%s %d\n", n, v)
			continue
		}
		if v, ok := s.Gauges[n]; ok {
			fmt.Fprintf(&b, "%s %d\n", n, v)
			continue
		}
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%s.count %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s.sum %d\n", n, h.Sum)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s.le.%d %d\n", n, bound, cum)
		}
		if len(h.Buckets) > len(h.Bounds) {
			cum += h.Buckets[len(h.Bounds)]
		}
		fmt.Fprintf(&b, "%s.le.inf %d\n", n, cum)
		for _, q := range quantilePoints {
			fmt.Fprintf(&b, "%s.p%d %d\n", n, q, h.Quantile(q))
		}
	}
	return b.String()
}

// jsonHistogram is the exposition shape of one histogram.
type jsonHistogram struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Bounds  []uint64 `json:"bounds"`
	Buckets []uint64 `json:"buckets"`
	P50     uint64   `json:"p50"`
	P95     uint64   `json:"p95"`
	P99     uint64   `json:"p99"`
}

// JSON renders the snapshot as indented JSON with the same content as
// Format (maps marshal with sorted keys, so this too is deterministic).
func (s Snapshot) JSON() ([]byte, error) {
	out := struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]int64         `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]jsonHistogram, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = jsonHistogram{
			Count:   h.Count,
			Sum:     h.Sum,
			Bounds:  h.Bounds,
			Buckets: h.Buckets,
			P50:     h.Quantile(50),
			P95:     h.Quantile(95),
			P99:     h.Quantile(99),
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
