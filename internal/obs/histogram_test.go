package obs

import (
	"math/rand"
	"sync"
	"testing"
)

// TestQuantileNearestRankSmallN is the regression suite for the
// percentile bug this package replaced: the old netsim percentile()
// computed a floored linear index ((len-1)*q/100), under-reporting tail
// quantiles for small served counts. Nearest-rank is the
// ceil(q·N/100)-th order statistic.
func TestQuantileNearestRankSmallN(t *testing.T) {
	cases := []struct {
		name    string
		samples []uint64
		q       int
		want    uint64
	}{
		// The motivating case: N=5, q=95 must select the 5th order
		// statistic (index 4), not index 3 as (5-1)*95/100 did.
		{"n5_p95_is_max", []uint64{10, 20, 30, 40, 50}, 95, 50},
		{"n5_p99_is_max", []uint64{10, 20, 30, 40, 50}, 99, 50},
		{"n5_p50_is_3rd", []uint64{10, 20, 30, 40, 50}, 50, 30}, // ceil(2.5)=3rd
		{"n5_p100_is_max", []uint64{10, 20, 30, 40, 50}, 100, 50},
		{"n5_p0_clamps_to_min", []uint64{10, 20, 30, 40, 50}, 0, 10},
		{"n1_any_q", []uint64{7}, 99, 7},
		{"n1_p50", []uint64{7}, 50, 7},
		{"n2_p50_is_1st", []uint64{3, 9}, 50, 3}, // ceil(1.0)=1st
		{"n2_p51_is_2nd", []uint64{3, 9}, 51, 9}, // ceil(1.02)=2nd
		{"n2_p95_is_max", []uint64{3, 9}, 95, 9}, // old: idx (1*95)/100 = 0
		{"n3_p95_is_max", []uint64{1, 2, 3}, 95, 3},
		{"n4_p75_is_3rd", []uint64{1, 2, 3, 4}, 75, 3}, // ceil(3.0)=3rd
		{"n4_p76_is_4th", []uint64{1, 2, 3, 4}, 76, 4}, // ceil(3.04)=4th
		{"n10_p95_is_max", []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 95, 10},
		{"n20_p95_is_19th", func() []uint64 {
			s := make([]uint64, 20)
			for i := range s {
				s[i] = uint64(i + 1)
			}
			return s
		}(), 95, 19},
		{"unsorted_input", []uint64{50, 10, 40, 20, 30}, 95, 50},
		{"duplicates", []uint64{5, 5, 5, 5, 9}, 50, 5},
		{"empty_is_zero", nil, 95, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewCycleHistogram()
			for _, v := range tc.samples {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%d) over %v = %d, want %d", tc.q, tc.samples, got, tc.want)
			}
			// The snapshot must agree while exact.
			if got := h.Snapshot().Quantile(tc.q); got != tc.want {
				t.Fatalf("Snapshot().Quantile(%d) = %d, want %d", tc.q, got, tc.want)
			}
		})
	}
}

func TestHistogramAccumulators(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 5126 {
		t.Fatalf("Sum = %d, want 5126", got)
	}
	if h.Min() != 5 || h.Max() != 5000 {
		t.Fatalf("Min/Max = %d/%d, want 5/5000", h.Min(), h.Max())
	}
	s := h.Snapshot()
	wantBuckets := []uint64{2, 2, 0, 1} // <=10: {5,10}; <=100: {11,100}; <=1000: {}; overflow: {5000}
	for i, w := range wantBuckets {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewCycleHistogram()
	b := NewCycleHistogram()
	for _, v := range []uint64{100, 300} {
		a.Observe(v)
	}
	for _, v := range []uint64{200, 400, 999} {
		b.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(); got != 5 {
		t.Fatalf("merged Count = %d, want 5", got)
	}
	if got := a.Quantile(95); got != 999 {
		t.Fatalf("merged Quantile(95) = %d, want 999 (exact samples survive merge)", got)
	}
	if a.Min() != 100 || a.Max() != 999 {
		t.Fatalf("merged Min/Max = %d/%d, want 100/999", a.Min(), a.Max())
	}
	if err := a.Merge(NewHistogram([]uint64{1, 2})); err == nil {
		t.Fatal("merging mismatched bounds must fail")
	}
	if err := a.Merge(a); err == nil {
		t.Fatal("self-merge must fail")
	}
}

// TestHistogramBucketFallback pins the behaviour past the exact-sample
// cap: quantiles degrade to the upper bound of the rank's bucket, and
// the overflow bucket answers with the retained max.
func TestHistogramBucketFallback(t *testing.T) {
	h := NewHistogram([]uint64{100, 200, 500})
	for i := 0; i < DefaultExactSamples+10; i++ {
		h.Observe(150)
	}
	h.Observe(9999)
	if got := h.Quantile(50); got != 200 {
		t.Fatalf("bucket-resolution Quantile(50) = %d, want bucket bound 200", got)
	}
	if got := h.Quantile(100); got != 9999 {
		t.Fatalf("overflow-bucket Quantile(100) = %d, want max 9999", got)
	}
	s := h.Snapshot()
	if s.Exact {
		t.Fatal("snapshot past the cap must not claim exactness")
	}
}

func TestHistogramSnapshotDelta(t *testing.T) {
	h := NewCycleHistogram()
	h.Observe(100)
	h.Observe(200)
	before := h.Snapshot()
	h.Observe(300)
	h.Observe(400)
	d := h.Snapshot().Delta(before)
	if d.Count != 2 {
		t.Fatalf("delta Count = %d, want 2", d.Count)
	}
	if d.Sum != 700 {
		t.Fatalf("delta Sum = %d, want 700", d.Sum)
	}
	var total uint64
	for _, c := range d.Buckets {
		total += c
	}
	if total != 2 {
		t.Fatalf("delta buckets sum to %d, want 2", total)
	}
}

// TestHistogramConcurrentObserve exercises the mutex under -race and
// checks that fan-out order cannot change the totals.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewCycleHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				h.Observe(uint64(r.Intn(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}

// TestMergeMatchesCombined pins the aggregation contract the network
// server relies on (per-connection latency histograms merged into the
// server-wide view): merging K part histograms is quantile-equivalent
// to one histogram that observed every sample directly — both while the
// combined population is exact and after it spills past the sample cap
// into bucket resolution.
func TestMergeMatchesCombined(t *testing.T) {
	check := func(t *testing.T, parts [][]uint64) {
		t.Helper()
		combined := NewCycleHistogram()
		merged := NewCycleHistogram()
		for _, vals := range parts {
			part := NewCycleHistogram()
			for _, v := range vals {
				part.Observe(v)
				combined.Observe(v)
			}
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Count() != combined.Count() || merged.Sum() != combined.Sum() {
			t.Fatalf("count/sum diverge: merged %d/%d vs combined %d/%d",
				merged.Count(), merged.Sum(), combined.Count(), combined.Sum())
		}
		if merged.Min() != combined.Min() || merged.Max() != combined.Max() {
			t.Fatalf("min/max diverge: merged %d/%d vs combined %d/%d",
				merged.Min(), merged.Max(), combined.Min(), combined.Max())
		}
		for q := 0; q <= 100; q++ {
			if m, c := merged.Quantile(q), combined.Quantile(q); m != c {
				t.Fatalf("Quantile(%d): merged %d vs combined %d", q, m, c)
			}
		}
	}

	t.Run("exact", func(t *testing.T) {
		r := rand.New(rand.NewSource(11))
		parts := make([][]uint64, 16) // per-connection populations of uneven size
		for i := range parts {
			vals := make([]uint64, 1+r.Intn(400))
			for j := range vals {
				vals[j] = uint64(r.Intn(2_000_000))
			}
			parts[i] = vals
		}
		check(t, parts)
	})

	t.Run("past_exact_cap", func(t *testing.T) {
		r := rand.New(rand.NewSource(13))
		per := DefaultExactSamples/4 + 17
		parts := make([][]uint64, 8) // combined population overflows the cap
		for i := range parts {
			vals := make([]uint64, per)
			for j := range vals {
				vals[j] = uint64(r.Intn(5_000_000))
			}
			parts[i] = vals
		}
		check(t, parts)
	})
}

// TestMergeCommutative checks the determinism contract: merging the same
// set of histograms in different orders yields identical snapshots in
// every delta-able quantity and identical quantiles.
func TestMergeCommutative(t *testing.T) {
	mk := func(vals ...uint64) *Histogram {
		h := NewCycleHistogram()
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	parts := []*Histogram{mk(100, 900), mk(250), mk(1, 2, 3, 70000)}
	merged := func(order []int) *Histogram {
		m := NewCycleHistogram()
		for _, i := range order {
			if err := m.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	a := merged([]int{0, 1, 2})
	b := merged([]int{2, 0, 1})
	if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatal("merge order changed accumulators")
	}
	for _, q := range []int{50, 95, 99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("merge order changed Quantile(%d): %d vs %d", q, a.Quantile(q), b.Quantile(q))
		}
	}
}
