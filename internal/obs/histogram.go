// Package obs is the repository's dependency-free observability layer:
// a shared fixed-boundary histogram (the one way any package reports a
// latency distribution), a process-wide metrics registry of named
// counters and gauges, and a structured event trace.
//
// Everything here is off-by-default on hot paths. Producers publish
// coarse-grained deltas (once per machine run, once per serving loop) and
// guard event emission behind a nil check, so the simulated numbers —
// and every committed golden — are byte-identical with the layer idle.
//
// Determinism contract: every published metric is either a counter (a
// sum of per-run deltas), a max-tracking gauge, or a histogram (bucket
// counts plus an order-insensitive exact-sample set). All of these are
// commutative across goroutines, so a snapshot delta taken around a
// table is identical at any `par` fan-out budget; CI pins this.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultExactSamples is how many raw samples a histogram retains for
// exact quantiles before falling back to bucket-resolution answers.
// Latency populations in this repository are request-sized (hundreds to
// a few thousand), so the default keeps every realistic run exact.
const DefaultExactSamples = 1 << 16

// DefaultCycleBounds returns the shared cycle-scaled bucket upper bounds
// used for simulated-latency histograms: a 1-2-5 ladder from 100 cycles
// to 1G cycles. Callers must not mutate the returned slice.
func DefaultCycleBounds() []uint64 {
	return []uint64{
		100, 200, 500,
		1_000, 2_000, 5_000,
		10_000, 20_000, 50_000,
		100_000, 200_000, 500_000,
		1_000_000, 2_000_000, 5_000_000,
		10_000_000, 20_000_000, 50_000_000,
		100_000_000, 200_000_000, 500_000_000,
		1_000_000_000,
	}
}

// Histogram is a fixed-boundary histogram over uint64 observations
// (cycles, by convention). It keeps bucket counts for merging and
// exposition, and — up to an exact-sample cap — the raw observations, so
// small populations get exact nearest-rank quantiles rather than bucket
// upper bounds. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	bounds  []uint64 // strictly increasing bucket upper bounds
	buckets []uint64 // len(bounds)+1; last is the overflow bucket
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	samples []uint64 // raw observations while count <= exactCap
	exact   bool     // samples still holds every observation
}

// NewHistogram returns a histogram over the given strictly increasing
// bucket upper bounds. It panics on empty or unsorted bounds — boundary
// sets are compile-time constants, not data.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d", i))
		}
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]uint64, len(bounds)+1),
		exact:   true,
	}
}

// NewCycleHistogram returns a histogram over DefaultCycleBounds.
func NewCycleHistogram() *Histogram { return NewHistogram(DefaultCycleBounds()) }

// bucketIndex returns the index of the bucket v falls into: the first
// bound >= v, or the overflow bucket.
func (h *Histogram) bucketIndex(v uint64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observeLocked(v)
}

func (h *Histogram) observeLocked(v uint64) {
	h.buckets[h.bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.exact {
		if len(h.samples) < DefaultExactSamples {
			h.samples = append(h.samples, v)
		} else {
			h.samples, h.exact = nil, false
		}
	}
}

// Merge folds o's observations into h. The two histograms must share the
// same bucket bounds. Merging keeps exactness only while the combined
// sample set fits the exact cap. Merge is commutative and associative in
// every reported quantity, so fan-out order cannot change a snapshot.
func (h *Histogram) Merge(o *Histogram) error {
	if h == o {
		return fmt.Errorf("obs: cannot merge a histogram into itself")
	}
	os := o.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(os.Bounds) != len(h.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d bounds", len(os.Bounds), len(h.bounds))
	}
	for i, b := range h.bounds {
		if os.Bounds[i] != b {
			return fmt.Errorf("obs: merging histograms with different bounds at %d", i)
		}
	}
	if os.Count == 0 {
		return nil
	}
	for i, c := range os.Buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || os.Min < h.min {
		h.min = os.Min
	}
	if os.Max > h.max {
		h.max = os.Max
	}
	h.count += os.Count
	h.sum += os.Sum
	if h.exact && os.Exact && len(h.samples)+len(os.Samples) <= DefaultExactSamples {
		h.samples = append(h.samples, os.Samples...)
	} else {
		h.samples, h.exact = nil, false
	}
	return nil
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min and Max return the smallest and largest observation (0 when empty).
func (h *Histogram) Min() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-th percentile (0 <= q <= 100) as the true
// nearest-rank order statistic: the ceil(q·N/100)-th smallest
// observation, clamped to [1, N]. With N=5 and q=95 that is the 5th
// order statistic — the maximum — not the 4th (the floored linear index
// the old netsim percentile() computed). While the histogram is exact
// (N within the sample cap) the answer is the exact observation;
// afterwards it is the upper bound of the bucket holding that rank (the
// maximum for the overflow bucket). Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q int) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 100 {
		q = 100
	}
	rank := (uint64(q)*h.count + 99) / 100 // ceil(q*N/100), integer-exact
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	if h.exact {
		sorted := make([]uint64, len(h.samples))
		copy(sorted, h.samples)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		return sorted[rank-1]
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max // overflow bucket: the max is the tightest bound we kept
		}
	}
	return h.max
}

// HistogramSnapshot is an immutable copy of a histogram's state, used by
// registry snapshots and for merging across snapshots.
type HistogramSnapshot struct {
	Bounds  []uint64 `json:"bounds"`
	Buckets []uint64 `json:"buckets"` // per-bucket (non-cumulative); last is overflow
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Exact   bool     `json:"exact"`
	Samples []uint64 `json:"-"` // raw observations while Exact
}

// Snapshot returns a copy of the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds:  h.bounds, // immutable after construction
		Buckets: append([]uint64(nil), h.buckets...),
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Exact:   h.exact,
	}
	if h.exact {
		s.Samples = append([]uint64(nil), h.samples...)
	}
	return s
}

// Delta returns the observations h gained since prev (which must be an
// earlier snapshot of the same histogram: same bounds, no resets).
// Count, Sum and Buckets subtract exactly; Min/Max/Exact/Samples are
// not delta-able and are dropped, so quantiles of a delta come from
// bucket resolution.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Bounds:  s.Bounds,
		Buckets: make([]uint64, len(s.Buckets)),
		Count:   s.Count - prev.Count,
		Sum:     s.Sum - prev.Sum,
	}
	for i := range s.Buckets {
		var p uint64
		if i < len(prev.Buckets) {
			p = prev.Buckets[i]
		}
		d.Buckets[i] = s.Buckets[i] - p
	}
	return d
}

// Quantile is the nearest-rank quantile of the snapshot. Exact while the
// snapshot carries its samples, bucket-resolution otherwise (the upper
// bound of the bucket containing the rank; the last bound for overflow).
func (s HistogramSnapshot) Quantile(q int) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 100 {
		q = 100
	}
	rank := (uint64(q)*s.Count + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	if s.Exact && len(s.Samples) > 0 {
		sorted := append([]uint64(nil), s.Samples...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		return sorted[rank-1]
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			if s.Max > 0 {
				return s.Max
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
