package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// EventKind classifies a trace record.
type EventKind uint8

// Event kinds. Args are per-kind (documented on each constant); Note
// carries preformatted detail the producer only builds when a trace is
// attached.
const (
	// EvSegRegLoad is a MOV to a segment register. Arg0 = segment
	// register number, Arg1 = selector raw value.
	EvSegRegLoad EventKind = iota + 1
	// EvDescInstall is a descriptor written into the kernel LDT
	// (a cash_modify_ldt or modify_ldt entry). Arg0 = LDT index,
	// Arg1 = segment base.
	EvDescInstall
	// EvDescEvict is a cached descriptor's index recycled onto the
	// user-space free list (the 3-slot cache overflowed or was raided by
	// an allocation). Arg0 = LDT index.
	EvDescEvict
	// EvLDTAlloc is one segment allocation request. Arg0 = LDT index
	// (0 when exhausted), Arg1 = segment base; Note says which path
	// served it (cache-hit, call-gate, modify_ldt, exhausted).
	EvLDTAlloc
	// EvLDTFree is one segment deallocation. Arg0 = LDT index.
	EvLDTFree
	// EvFault is a run ending in a fault (#GP, #PF, software check,
	// watchdog, transient). Arg0 = vm fault kind, Arg1 = instruction
	// index; Note is the fault text.
	EvFault
	// EvRetry is a resilient-server retry of a transient kernel failure.
	// Arg0 = request index, Arg1 = attempt number.
	EvRetry
	// EvShed is a refused request. Arg0 = request index; Note says why
	// (load shedding window or retries exhausted).
	EvShed
	// EvDegrade is the server entering flat-segment degraded mode
	// (§3.4). Arg0 = request index.
	EvDegrade
	// EvRearm is the server leaving degraded mode after a clean probe.
	// Arg0 = request index.
	EvRearm
)

func (k EventKind) String() string {
	switch k {
	case EvSegRegLoad:
		return "seg-load"
	case EvDescInstall:
		return "desc-install"
	case EvDescEvict:
		return "desc-evict"
	case EvLDTAlloc:
		return "ldt-alloc"
	case EvLDTFree:
		return "ldt-free"
	case EvFault:
		return "fault"
	case EvRetry:
		return "retry"
	case EvShed:
		return "shed"
	case EvDegrade:
		return "degrade"
	case EvRearm:
		return "rearm"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one structured trace record.
type Event struct {
	Seq  uint64    `json:"seq"` // emission order, starting at 1
	Kind EventKind `json:"kind"`
	Arg0 uint64    `json:"arg0"`
	Arg1 uint64    `json:"arg1"`
	Note string    `json:"note,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("%6d %-12s a0=%-6d a1=%-10d", e.Seq, e.Kind, e.Arg0, e.Arg1)
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// DefaultTraceCapacity is the ring size used when a capacity of 0 is
// requested.
const DefaultTraceCapacity = 4096

// Trace is a bounded ring buffer of events. When full, the oldest
// records are overwritten and counted as dropped. All methods are safe
// on a nil *Trace — Emit on nil is a no-op — so producers hold a plain
// field and hot paths pay one nil check while tracing is off.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest record
	n       int // records currently held
	seq     uint64
	dropped uint64
}

// NewTrace returns a trace holding up to capacity events (0 means
// DefaultTraceCapacity).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Enabled reports whether events emitted here are recorded. Producers
// that must format a Note should guard the formatting with it.
func (t *Trace) Enabled() bool { return t != nil }

// Emit appends one event, assigning its sequence number. No-op on nil.
func (t *Trace) Emit(kind EventKind, arg0, arg1 uint64, note string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e := Event{Seq: t.seq, Kind: kind, Arg0: arg0, Arg1: arg1, Note: note}
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = e
		t.n++
		return
	}
	t.buf[t.start] = e
	t.start = (t.start + 1) % len(t.buf)
	t.dropped++
}

// Events returns the retained records, oldest first. Nil-safe.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Len returns how many records are retained. Nil-safe.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many records were overwritten. Nil-safe.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Drain returns the retained records, oldest first, and clears the
// buffer (sequence numbering continues). Nil-safe.
func (t *Trace) Drain() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	t.start, t.n = 0, 0
	return out
}

// Format renders the trace as text: a header with totals, then one line
// per retained event. Nil-safe (renders an empty trace).
func (t *Trace) Format() string {
	events := t.Events()
	var b strings.Builder
	fmt.Fprintf(&b, "EVENTS — %d recorded, %d dropped (ring capacity %d)\n",
		len(events), t.Dropped(), t.capacity())
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the retained events as an indented JSON array. Nil-safe.
func (t *Trace) JSON() ([]byte, error) {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	return json.MarshalIndent(struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}{t.Dropped(), events}, "", "  ")
}

func (t *Trace) capacity() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// defaultTrace is the process-wide trace producers without an explicit
// trace parameter (the netsim serving loop) emit into. It starts nil:
// tracing is strictly opt-in.
var defaultTrace atomic.Pointer[Trace]

// DefaultTrace returns the process-wide trace, or nil when tracing is
// off. The nil result is safe to Emit into.
func DefaultTrace() *Trace { return defaultTrace.Load() }

// SetDefaultTrace installs (or, with nil, removes) the process-wide
// trace and returns the previous one.
func SetDefaultTrace(t *Trace) *Trace { return defaultTrace.Swap(t) }
