package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Emit(EvFault, 1, 2, "ignored")
	if tr.Enabled() {
		t.Fatal("nil trace must report disabled")
	}
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 || tr.Drain() != nil {
		t.Fatal("nil trace accessors must be empty")
	}
	if !strings.Contains(tr.Format(), "0 recorded") {
		t.Fatal("nil trace must format as empty")
	}
}

func TestTraceOrderAndSeq(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit(EvSegRegLoad, 0, 0x1f, "ES")
	tr.Emit(EvLDTAlloc, 3, 0x1000, "call-gate")
	tr.Emit(EvLDTFree, 3, 0, "")
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("len = %d, want 3", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if events[1].Kind != EvLDTAlloc || events[1].Note != "call-gate" {
		t.Fatalf("event 1 = %+v", events[1])
	}
}

func TestTraceRingOverwrite(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit(EvRetry, uint64(i), 0, "")
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	// Oldest-first and the newest 4 survive.
	for i, e := range events {
		if e.Arg0 != uint64(6+i) {
			t.Fatalf("event %d Arg0 = %d, want %d", i, e.Arg0, 6+i)
		}
	}
}

func TestTraceDrain(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit(EvShed, 1, 0, "window")
	got := tr.Drain()
	if len(got) != 1 || tr.Len() != 0 {
		t.Fatalf("drain returned %d events, left %d", len(got), tr.Len())
	}
	tr.Emit(EvShed, 2, 0, "")
	if e := tr.Events()[0]; e.Seq != 2 {
		t.Fatalf("sequence must continue across Drain, got %d", e.Seq)
	}
}

func TestTraceFormatAndJSON(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit(EvDegrade, 42, 0, "enter flat-segment mode")
	text := tr.Format()
	if !strings.Contains(text, "degrade") || !strings.Contains(text, "enter flat-segment mode") {
		t.Fatalf("Format missing content:\n%s", text)
	}
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			Seq  uint64 `json:"seq"`
			Note string `json:"note"`
		} `json:"events"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Events) != 1 || parsed.Events[0].Note != "enter flat-segment mode" {
		t.Fatalf("JSON = %s", data)
	}
}

func TestDefaultTraceSwap(t *testing.T) {
	old := SetDefaultTrace(nil)
	defer SetDefaultTrace(old)
	if DefaultTrace() != nil {
		t.Fatal("default trace must start nil in tests")
	}
	tr := NewTrace(4)
	if prev := SetDefaultTrace(tr); prev != nil {
		t.Fatal("unexpected previous trace")
	}
	DefaultTrace().Emit(EvRearm, 1, 0, "")
	if tr.Len() != 1 {
		t.Fatal("emit through DefaultTrace must reach the installed trace")
	}
}

func TestTraceConcurrentEmit(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(EvSegRegLoad, uint64(i), 0, "")
			}
		}()
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 800 {
		t.Fatalf("retained+dropped = %d, want 800", got)
	}
}
